package tcl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"wafe/internal/obs"
)

// Code is a Tcl completion code. Values match Tcl's catch numbering.
type Code int

const (
	CodeOK       Code = 0
	CodeError    Code = 1
	CodeReturn   Code = 2
	CodeBreak    Code = 3
	CodeContinue Code = 4
	// CodeExit signals that the script called exit; embedders terminate
	// their event loop (rather than the process) when they see it.
	CodeExit Code = 5
)

// IsExit reports whether err is a Tcl exit request and returns the exit
// status if so. An empty value means a plain "exit" (status 0); any
// other value must be a whole decimal integer — a malformed value
// reports status 1 rather than masquerading as success.
func IsExit(err error) (int, bool) {
	te, ok := err.(*Error)
	if !ok || te.Code != CodeExit {
		return 0, false
	}
	s := strings.TrimSpace(te.Value)
	if s == "" {
		return 0, true
	}
	n, convErr := strconv.Atoi(s)
	if convErr != nil {
		return 1, true
	}
	return n, true
}

// Error is the error type produced by interpreter evaluation. It carries
// the Tcl completion code so that flow-control commands (break, continue,
// return) propagate through Go call chains, exactly as Tcl completion
// codes propagate through the C call chain in the original.
type Error struct {
	Code  Code
	Value string // error message (CodeError) or return value (CodeReturn)
}

func (e *Error) Error() string { return e.Value }

// NewError returns a plain Tcl error with the given message.
func NewError(format string, args ...any) *Error {
	return &Error{Code: CodeError, Value: fmt.Sprintf(format, args...)}
}

var (
	errBreak    = &Error{Code: CodeBreak, Value: "invoked \"break\" outside of a loop"}
	errContinue = &Error{Code: CodeContinue, Value: "invoked \"continue\" outside of a loop"}
)

// CommandFunc is the Go signature of a Tcl command. argv[0] is the
// command name; the remaining elements are fully substituted argument
// strings. Returning a non-nil error aborts evaluation unless a caller
// (catch, loops) intercepts the completion code.
type CommandFunc func(in *Interp, argv []string) (string, error)

// Proc is a user-defined procedure created by the proc command.
type Proc struct {
	Name string
	Args []ProcArg
	Body string

	// compiled is the Body compiled once at registration (or lazily on
	// the first call, for procs built directly by embedders). It is
	// derived purely from Body; redefining a proc installs a fresh Proc
	// with a fresh compiled body, so no invalidation is needed.
	compiled *Script
}

// ProcArg is one formal parameter of a proc, with an optional default.
type ProcArg struct {
	Name       string
	Default    string
	HasDefault bool
}

// variable holds a scalar or associative-array value. A variable with a
// non-nil link is an alias created by upvar/global. Scalars hold a
// typed Value so numbers written by the bytecode engine (incr, set
// from an expr) keep their machine representation between commands.
type variable struct {
	val     Value
	arr     map[string]string
	isArray bool
	link    *variable
}

func (v *variable) resolve() *variable {
	for v.link != nil {
		v = v.link
	}
	return v
}

// frame is one procedure call frame. Frames are pooled (acquireFrame/
// releaseFrame) and formal parameters are allocated from the frame's
// storage slab, so a proc call reuses one map and one backing array
// instead of allocating per call. The slab is safe to recycle because
// variable links always point from a deeper frame to a shallower one:
// by the time a frame is released every frame that could alias its
// variables is already gone.
type frame struct {
	vars map[string]*variable
	// proc is the procedure executing in this frame, nil for the global frame.
	proc *Proc
	// storage backs the formal-parameter variables of a pooled frame.
	storage []variable
	// id is the activation identity (frameSeq): unique per activation
	// even when the frame object itself is recycled through the pool.
	id uint64
}

// Interp is a Tcl interpreter instance. It is not safe for concurrent
// use; like Xt itself, Wafe is single threaded and funnels all work
// through one event loop.
type Interp struct {
	commands map[string]CommandFunc
	procs    map[string]*Proc
	frames   []*frame

	// metas holds per-command metadata (arity bounds, options) set via
	// SetCommandMeta; read by the wafecheck linter and, for entries
	// with a Usage string, by central arity enforcement.
	metas map[string]CommandMeta

	// Unknown, when non-nil, is invoked for undefined command names,
	// mirroring Tcl's unknown mechanism.
	Unknown CommandFunc

	// Stdout receives output of puts/echo. Defaults to an internal
	// buffer accessible via Output; the Wafe frontend points it at the
	// real stdout or the backend pipe.
	Stdout func(line string)

	output strings.Builder

	// maxNesting guards against runaway recursion.
	nesting    int
	maxNesting int

	// chans holds open file channels (the open/gets/close commands).
	chans *channelTable

	// errorUnwinding marks that errorInfo is being accumulated for the
	// currently-propagating error.
	errorUnwinding bool

	// scriptCache interns compiled scripts by source string, so that
	// repeatedly evaluated callbacks and bodies compile once. A nil
	// cache disables interning (SetScriptCacheSize(0)).
	scriptCache *lruCache
	// exprCache interns compiled expression ASTs by source string.
	exprCache *lruCache

	// obs, when non-nil, collects dispatch counts, eval latency and
	// cache hit rates. Nil (the default) keeps every hot path at a
	// single pointer comparison.
	obs *obs.TclMetrics

	// trace, when non-nil, records spans for top-level evals and proc
	// calls (same nil-pointer discipline as obs).
	trace *obs.Trace

	// prof is the active Tcl profiler; nil outside a profiling window.
	// The remaining fields are its activation bookkeeping: per-command
	// and per-proc child-time accumulators, the live proc stack for
	// folded output, and the per-Script newline index cache
	// (profile.go).
	prof          *obs.Profiler
	profCmdChild  []int64
	profProcChild []int64
	profProcStack []string
	profLines     map[*Script][]int

	// engine selects the execution engine: the register-bytecode VM
	// (default) or the classic tree walker, kept as the differential
	// oracle and the --tcl-engine=tree escape hatch.
	engine Engine

	// cmdGen is bumped on every change to the command table; the VM's
	// inline dispatch caches are valid only while their recorded
	// generation matches.
	cmdGen uint64

	// specialGen counts rebinds of the commands the bytecode compiler
	// specializes (set, incr, expr, while, for); specialBase is its
	// value right
	// after New registered the builtins. While they are equal the
	// builtins are known to still be in place, so the specialized
	// opcodes may bypass the command table; any later rebind makes the
	// two diverge forever and every specialized site falls back to
	// generic dispatch.
	specialGen  uint64
	specialBase uint64

	// progCache maps compiled Scripts to their bytecode Programs. It is
	// per-interpreter (Programs embed interpreter-local inline caches)
	// and is flushed wholesale when it grows past progCacheMax.
	progCache map[*Script]*Program

	// framePool and regPool recycle proc call frames and VM register
	// files (arena-style: grab on entry, release on exit).
	framePool []*frame
	regPool   [][]Value

	// argvPool recycles the []string argument vectors built for
	// command invocations (vm.go opInvoke). Safe because commands do
	// not retain their argv slice past returning.
	argvPool [][]string

	// tmplSlots is a scratch buffer for expr-template slot values
	// (vm.go execExprTmpl); reused across evaluations to avoid
	// per-expression allocation.
	tmplSlots []Value

	// evPool recycles exprEvaluators: the evaluator is passed through
	// the exprNode interface, so a fresh one would escape to the heap
	// on every expression evaluated.
	evPool []*exprEvaluator

	// opCounts, when armed via CountDispatch, tallies VM dispatches by
	// opcode kind so tests can cross-check `wafecheck -why` labels
	// against what the engine actually executed. Nil (free) by default.
	opCounts *DispatchCounts

	// frameSeq hands out a fresh identity to every frame activation
	// (pooled frame objects are reused, so the pointer is not an
	// identity); varEpoch counts the events that can invalidate a
	// cached name->variable resolution anywhere in the interpreter:
	// unset, upvar/global relinking, scalar-to-array conversion.
	// Together they validate varRef caches (see cachedScalar).
	frameSeq uint64
	varEpoch uint64
}

// varRef is an inline cache for one compiled variable-access site: the
// resolved scalar variable, valid while the same frame activation is
// current and no unset/relink/array conversion has happened since.
type varRef struct {
	frameID uint64
	epoch   uint64
	v       *variable
}

// Engine names a Tcl execution engine.
type Engine int

const (
	// EngineBytecode compiles scripts to register bytecode (the v2
	// engine, default).
	EngineBytecode Engine = iota
	// EngineTree is the classic tree walker, retained as the
	// differential oracle and as an escape hatch.
	EngineTree
)

// ParseEngine maps a --tcl-engine flag value to an Engine.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", "bytecode", "vm":
		return EngineBytecode, nil
	case "tree":
		return EngineTree, nil
	}
	return EngineBytecode, fmt.Errorf("unknown tcl engine %q (want bytecode or tree)", name)
}

// SetEngine selects the execution engine.
func (in *Interp) SetEngine(e Engine) { in.engine = e }

// CurrentEngine reports the selected execution engine.
func (in *Interp) CurrentEngine() Engine { return in.engine }

// SetObs attaches (or, with nil, detaches) the observability metrics.
func (in *Interp) SetObs(m *obs.TclMetrics) { in.obs = m }

// New creates an interpreter with the standard command set registered.
func New() *Interp {
	in := &Interp{
		commands:    make(map[string]CommandFunc),
		procs:       make(map[string]*Proc),
		frames:      []*frame{{vars: make(map[string]*variable), id: 1}},
		frameSeq:    1,
		maxNesting:  1000,
		scriptCache: newLRUCache(defaultScriptCacheSize),
		exprCache:   newLRUCache(defaultExprCacheSize),
	}
	in.Stdout = func(line string) {
		in.output.WriteString(line)
		in.output.WriteByte('\n')
	}
	registerCoreCommands(in)
	registerStringCommands(in)
	registerListCommands(in)
	registerIOCommands(in)
	registerBuiltinMetas(in)
	in.specialBase = in.specialGen
	return in
}

// Output returns and clears text accumulated by puts/echo when Stdout
// has not been redirected.
func (in *Interp) Output() string {
	s := in.output.String()
	in.output.Reset()
	return s
}

// isSpecializedName reports whether the bytecode compiler emits
// dedicated opcodes for this command name.
func isSpecializedName(name string) bool {
	switch name {
	case "set", "incr", "expr", "while", "for":
		return true
	}
	return false
}

// RegisterCommand binds name to fn, replacing any previous binding.
func (in *Interp) RegisterCommand(name string, fn CommandFunc) {
	in.commands[name] = fn
	in.cmdGen++
	if isSpecializedName(name) {
		in.specialGen++
	}
}

// UnregisterCommand removes a command binding and its metadata.
func (in *Interp) UnregisterCommand(name string) {
	delete(in.commands, name)
	delete(in.procs, name)
	delete(in.metas, name)
	in.cmdGen++
	if isSpecializedName(name) {
		in.specialGen++
	}
}

// HasCommand reports whether name is a registered command or proc.
func (in *Interp) HasCommand(name string) bool {
	_, ok := in.commands[name]
	return ok
}

// Command returns the registered implementation of a command, allowing
// embedders to wrap or chain it.
func (in *Interp) Command(name string) (CommandFunc, bool) {
	fn, ok := in.commands[name]
	return fn, ok
}

// CommandNames returns all registered command names, sorted.
func (in *Interp) CommandNames() []string {
	names := make([]string, 0, len(in.commands))
	for n := range in.commands {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (in *Interp) currentFrame() *frame { return in.frames[len(in.frames)-1] }

func (in *Interp) globalFrame() *frame { return in.frames[0] }

// Level returns the current call-frame depth (0 = global).
func (in *Interp) Level() int { return len(in.frames) - 1 }

// splitArrayRef splits "name(index)" into (name, index, true); a plain
// name returns ok=false.
func splitArrayRef(name string) (base, idx string, ok bool) {
	open := strings.IndexByte(name, '(')
	if open >= 0 && strings.HasSuffix(name, ")") {
		return name[:open], name[open+1 : len(name)-1], true
	}
	return name, "", false
}

// GetVar returns the value of a variable in the current frame. The name
// may be of the form name(index) for array elements.
func (in *Interp) GetVar(name string) (string, error) {
	return in.getVarInFrame(in.currentFrame(), name)
}

func (in *Interp) getVarInFrame(f *frame, name string) (string, error) {
	base, idx, isArr := splitArrayRef(name)
	v, ok := f.vars[base]
	if !ok {
		return "", NewError("can't read %q: no such variable", name)
	}
	v = v.resolve()
	if isArr {
		if !v.isArray {
			return "", NewError("can't read %q: variable isn't array", name)
		}
		val, ok := v.arr[idx]
		if !ok {
			return "", NewError("can't read %q: no such element in array", name)
		}
		return val, nil
	}
	if v.isArray {
		return "", NewError("can't read %q: variable is array", name)
	}
	return v.val.String(), nil
}

// lookupScalar returns the typed value of a plain scalar variable in
// the current frame. ok is false for missing variables and arrays —
// callers fall back to the string path, which raises the classic
// errors.
func (in *Interp) lookupScalar(name string) (Value, bool) {
	v, ok := in.currentFrame().vars[name]
	if !ok {
		return Value{}, false
	}
	v = v.resolve()
	if v.isArray {
		return Value{}, false
	}
	return v.val, true
}

// setScalarValue stores a typed value into a plain scalar variable
// (name must not use the name(index) array form). Floats are
// normalized on store so the typed engine matches the string engine's
// format-and-reparse round trip.
func (in *Interp) setScalarValue(name string, val Value) error {
	f := in.currentFrame()
	v, ok := f.vars[name]
	if !ok {
		v = &variable{}
		f.vars[name] = v
	}
	v = v.resolve()
	if v.isArray {
		return NewError("can't set %q: variable is array", name)
	}
	v.val = normFloat(val)
	return nil
}

// incrVar adds delta to an integer variable, creating it at 0 like the
// incr command always has. The typed path avoids the parse/format
// round trip when the variable already holds a machine integer.
func (in *Interp) incrVar(name string, delta int64) (Value, error) {
	base, _, isArr := splitArrayRef(name)
	if !isArr {
		f := in.currentFrame()
		if v, ok := f.vars[base]; ok {
			rv := v.resolve()
			if rv.isArray {
				return Value{}, NewError("can't read %q: variable is array", name)
			}
			var cur int64
			if rv.val.kind == vInt {
				cur = rv.val.i
			} else {
				s := rv.val.String()
				c, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
				if err != nil {
					return Value{}, NewError("expected integer but got %q", s)
				}
				cur = c
			}
			nv := intVal(cur + delta)
			rv.val = nv
			return nv, nil
		}
		nv := intVal(delta)
		f.vars[base] = &variable{val: nv}
		return nv, nil
	}
	// Array elements go through the string API.
	cur := int64(0)
	if in.VarExists(name) {
		s, err := in.GetVar(name)
		if err != nil {
			return Value{}, err
		}
		c, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
		if err != nil {
			return Value{}, NewError("expected integer but got %q", s)
		}
		cur = c
	}
	nv := intVal(cur + delta)
	if err := in.SetVar(name, nv.String()); err != nil {
		return Value{}, err
	}
	return nv, nil
}

// cachedScalar resolves a plain scalar variable through a per-site
// inline cache. A hit skips the frame's map lookup entirely; the cache
// is valid while the same activation (frame id) is current and no
// unset/upvar/array-conversion has happened since it was filled
// (varEpoch). Only positive, scalar results are cached: misses and
// arrays fall back to the classic paths and leave the cache alone, so
// a stale negative can never shadow a later creation.
func (in *Interp) cachedScalar(ref *varRef, name string) (*variable, bool) {
	f := in.currentFrame()
	if ref.frameID == f.id && ref.epoch == in.varEpoch {
		return ref.v, true
	}
	v, ok := f.vars[name]
	if !ok {
		return nil, false
	}
	rv := v.resolve()
	if rv.isArray {
		return nil, false
	}
	ref.frameID, ref.epoch, ref.v = f.id, in.varEpoch, rv
	return rv, true
}

// setScalarRef is setScalarValue through a varRef cache. A hit writes
// straight through the cached pointer; the miss path replicates
// setScalarValue (including creation) and fills the cache.
func (in *Interp) setScalarRef(ref *varRef, name string, val Value) error {
	f := in.currentFrame()
	if ref.frameID == f.id && ref.epoch == in.varEpoch {
		ref.v.val = normFloat(val)
		return nil
	}
	v, ok := f.vars[name]
	if !ok {
		v = &variable{}
		f.vars[name] = v
	}
	rv := v.resolve()
	if rv.isArray {
		return NewError("can't set %q: variable is array", name)
	}
	rv.val = normFloat(val)
	ref.frameID, ref.epoch, ref.v = f.id, in.varEpoch, rv
	return nil
}

// incrRef is the scalar-variable incr through a varRef cache.
func (in *Interp) incrRef(ref *varRef, name string, delta int64) (Value, error) {
	rv, ok := in.cachedScalar(ref, name)
	if !ok {
		return in.incrVar(name, delta)
	}
	var cur int64
	if rv.val.kind == vInt {
		cur = rv.val.i
	} else {
		s := rv.val.String()
		c, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
		if err != nil {
			return Value{}, NewError("expected integer but got %q", s)
		}
		cur = c
	}
	nv := intVal(cur + delta)
	rv.val = nv
	return nv, nil
}

// SetVar sets a variable (or array element, for name(index)) in the
// current frame.
func (in *Interp) SetVar(name, value string) error {
	return in.setVarInFrame(in.currentFrame(), name, value)
}

// SetGlobalVar sets a variable in the global frame regardless of the
// current call depth.
func (in *Interp) SetGlobalVar(name, value string) error {
	return in.setVarInFrame(in.globalFrame(), name, value)
}

// GetGlobalVar reads a variable from the global frame.
func (in *Interp) GetGlobalVar(name string) (string, error) {
	return in.getVarInFrame(in.globalFrame(), name)
}

func (in *Interp) setVarInFrame(f *frame, name, value string) error {
	base, idx, isArr := splitArrayRef(name)
	v, ok := f.vars[base]
	if !ok {
		v = &variable{}
		f.vars[base] = v
	}
	v = v.resolve()
	if isArr {
		if !v.isArray {
			if v.val.String() != "" {
				return NewError("can't set %q: variable isn't array", name)
			}
			v.isArray = true
			v.arr = make(map[string]string)
			in.varEpoch++ // scalar became array: cached scalar refs to it are invalid
		}
		v.arr[idx] = value
		return nil
	}
	if v.isArray {
		return NewError("can't set %q: variable is array", name)
	}
	v.val = strVal(value)
	return nil
}

// UnsetVar removes a variable or array element from the current frame.
func (in *Interp) UnsetVar(name string) error {
	f := in.currentFrame()
	base, idx, isArr := splitArrayRef(name)
	v, ok := f.vars[base]
	if !ok {
		return NewError("can't unset %q: no such variable", name)
	}
	rv := v.resolve()
	if isArr {
		if !rv.isArray {
			return NewError("can't unset %q: variable isn't array", name)
		}
		if _, ok := rv.arr[idx]; !ok {
			return NewError("can't unset %q: no such element in array", name)
		}
		delete(rv.arr, idx)
		return nil
	}
	delete(f.vars, base)
	in.varEpoch++ // unset: cached refs to this name are invalid
	return nil
}

// VarExists reports whether a variable (or array element) exists.
func (in *Interp) VarExists(name string) bool {
	f := in.currentFrame()
	base, idx, isArr := splitArrayRef(name)
	v, ok := f.vars[base]
	if !ok {
		return false
	}
	v = v.resolve()
	if isArr {
		if !v.isArray {
			return false
		}
		_, ok := v.arr[idx]
		return ok
	}
	return true
}

// arrayVar returns the resolved variable for name if it is an array.
func (in *Interp) arrayVar(name string) (*variable, bool) {
	v, ok := in.currentFrame().vars[name]
	if !ok {
		return nil, false
	}
	v = v.resolve()
	if !v.isArray {
		return nil, false
	}
	return v, true
}

// linkVar makes localName in the current frame an alias for name in the
// target frame (upvar/global).
func (in *Interp) linkVar(target *frame, name, localName string) error {
	base, _, isArr := splitArrayRef(name)
	if isArr {
		return NewError("can't upvar to array element %q", name)
	}
	tv, ok := target.vars[base]
	if !ok {
		tv = &variable{}
		target.vars[base] = tv
	}
	in.currentFrame().vars[localName] = &variable{link: tv}
	in.varEpoch++ // relink: localName may have resolved elsewhere before
	return nil
}

// Eval evaluates a script and returns the result of its last command.
// The script is compiled once and interned, so evaluating the same
// source again (callback fires, loop bodies) skips the parser.
func (in *Interp) Eval(script string) (string, error) {
	return in.EvalScript(in.compileCached(script))
}

// EvalWords invokes a command given pre-substituted words, bypassing the
// parser. Used by the Wafe layer for callbacks built programmatically.
func (in *Interp) EvalWords(argv []string) (string, error) {
	if len(argv) == 0 {
		return "", nil
	}
	return in.invoke(argv)
}

func (in *Interp) invoke(argv []string) (string, error) {
	name := argv[0]
	if m := in.obs; m != nil {
		m.Dispatch.Inc(name)
	}
	if fn, ok := in.commands[name]; ok {
		return fn(in, argv)
	}
	if in.Unknown != nil {
		return in.Unknown(in, argv)
	}
	return "", NewError("invalid command name %q", name)
}

// substWords performs $, [] and backslash substitution on parsed words.
func (in *Interp) substWords(words []word) ([]string, error) {
	argv := make([]string, 0, len(words))
	for _, w := range words {
		s, err := in.substWord(w)
		if err != nil {
			return nil, err
		}
		argv = append(argv, s)
	}
	return argv, nil
}

func (in *Interp) substWord(w word) (string, error) {
	if len(w.tokens) == 1 && w.tokens[0].kind == tokText {
		return w.tokens[0].text, nil
	}
	var b strings.Builder
	for _, t := range w.tokens {
		s, err := in.substToken(t)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	return b.String(), nil
}

func (in *Interp) substToken(t token) (string, error) {
	switch t.kind {
	case tokText:
		return t.text, nil
	case tokVar:
		name := t.text
		if t.hasIdx {
			var idx strings.Builder
			for _, it := range t.index {
				s, err := in.substToken(it)
				if err != nil {
					return "", err
				}
				idx.WriteString(s)
			}
			name = name + "(" + idx.String() + ")"
		}
		return in.GetVar(name)
	case tokCommand:
		if t.script != nil {
			return in.EvalScript(t.script)
		}
		return in.Eval(t.text)
	}
	return "", NewError("internal: bad token kind")
}

// Subst performs Tcl substitution on a string without treating it as a
// command (the subst command).
func (in *Interp) Subst(s string) (string, error) {
	p := newParser(s)
	var b strings.Builder
	for !p.atEnd() {
		c := p.peek()
		switch c {
		case '\\':
			r, err := p.parseBackslash()
			if err != nil {
				return "", &Error{Code: CodeError, Value: err.Error()}
			}
			b.WriteString(r)
		case '$':
			t, err := p.parseVarToken()
			if err != nil {
				return "", &Error{Code: CodeError, Value: err.Error()}
			}
			v, err := in.substToken(t)
			if err != nil {
				return "", err
			}
			b.WriteString(v)
		case '[':
			t, err := p.parseCommandToken()
			if err != nil {
				return "", &Error{Code: CodeError, Value: err.Error()}
			}
			v, err := in.Eval(t.text)
			if err != nil {
				return "", err
			}
			b.WriteString(v)
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return b.String(), nil
}

// callProc pushes a frame, binds arguments and evaluates the proc body.
// recordErrorInfo appends a stack-trace line to the errorInfo global,
// as classic Tcl does while an error unwinds.
func (in *Interp) recordErrorInfo(err error, context string) {
	te, ok := err.(*Error)
	if !ok || te.Code != CodeError {
		return
	}
	cur, getErr := in.GetGlobalVar("errorInfo")
	if getErr != nil || !in.errorUnwinding {
		cur = te.Value
		in.errorUnwinding = true
	}
	_ = in.SetGlobalVar("errorInfo", cur+"\n    "+context)
}

// ErrorInfo returns the traceback accumulated for the most recent
// error (the errorInfo global).
func (in *Interp) ErrorInfo() string {
	v, err := in.GetGlobalVar("errorInfo")
	if err != nil {
		return ""
	}
	return v
}

// acquireFrame grabs a pooled call frame (or makes one) for proc p.
// Every activation gets a fresh id so varRef caches from a previous
// tenant of a recycled frame object cannot hit.
func (in *Interp) acquireFrame(p *Proc) *frame {
	in.frameSeq++
	if n := len(in.framePool); n > 0 {
		f := in.framePool[n-1]
		in.framePool = in.framePool[:n-1]
		f.proc = p
		f.id = in.frameSeq
		return f
	}
	return &frame{vars: make(map[string]*variable, 8), proc: p, id: in.frameSeq}
}

// releaseFrame clears a frame and returns it to the pool. Must only be
// called once the frame is off the stack — no live variable can alias
// the slab then (links point deeper-to-shallower).
func (in *Interp) releaseFrame(f *frame) {
	for k := range f.vars {
		delete(f.vars, k)
	}
	f.proc = nil
	f.storage = f.storage[:0]
	if len(in.framePool) < 64 {
		in.framePool = append(in.framePool, f)
	}
}

func (in *Interp) callProc(p *Proc, argv []string) (string, error) {
	if t := in.trace; t != nil {
		sp := t.StartSpan("proc", p.Name)
		defer sp.End()
	}
	if in.prof != nil {
		done := in.profEnterProc(p.Name)
		defer done()
	}
	f := in.acquireFrame(p)
	actual := argv[1:]
	nFormal := len(p.Args)
	if cap(f.storage) < nFormal {
		f.storage = make([]variable, 0, nFormal+4)
	}
	varArgs := nFormal > 0 && p.Args[nFormal-1].Name == "args"
	for i, formal := range p.Args {
		if varArgs && i == nFormal-1 {
			var rest []string
			if i < len(actual) {
				rest = actual[i:]
			}
			f.storage = append(f.storage, variable{val: strVal(FormatList(rest))})
			f.vars["args"] = &f.storage[len(f.storage)-1]
			break
		}
		var val string
		switch {
		case i < len(actual):
			val = actual[i]
		case formal.HasDefault:
			val = formal.Default
		default:
			in.releaseFrame(f)
			return "", NewError("no value given for parameter %q to %q", formal.Name, p.Name)
		}
		// Interned so numeric arguments (the common case for compute
		// procs) arrive typed and loop bodies never re-parse them.
		f.storage = append(f.storage, variable{val: internValue(val)})
		f.vars[formal.Name] = &f.storage[len(f.storage)-1]
	}
	if !varArgs && len(actual) > nFormal {
		in.releaseFrame(f)
		return "", NewError("called %q with too many arguments", p.Name)
	}
	in.frames = append(in.frames, f)
	defer func() {
		in.frames = in.frames[:len(in.frames)-1]
		in.releaseFrame(f)
	}()
	if p.compiled == nil {
		p.compiled = compileScript(p.Body)
	}
	res, err := in.EvalScript(p.compiled)
	if err != nil {
		var te *Error
		if asTclError(err, &te) {
			switch te.Code {
			case CodeReturn:
				return te.Value, nil
			case CodeBreak, CodeContinue:
				return "", NewError("invoked %q outside of a loop",
					map[Code]string{CodeBreak: "break", CodeContinue: "continue"}[te.Code])
			}
		}
		in.recordErrorInfo(err, fmt.Sprintf("(procedure %q invoked as %q)", p.Name, strings.Join(argv, " ")))
		return "", err
	}
	return res, nil
}

func asTclError(err error, out **Error) bool {
	te, ok := err.(*Error)
	if ok {
		*out = te
	}
	return ok
}
