package tcl

import "testing"

// differentialCorpus exercises the constructs whose bodies the compiled
// pipeline caches: procs, loops, conditionals, expressions, nested
// substitutions, completion codes and parse errors.
var differentialCorpus = []string{
	// Procs and recursion.
	"proc fac {n} {if {$n <= 1} {return 1}; expr $n * [fac [expr $n-1]]}\nfac 6",
	"proc sum {args} {set t 0; foreach a $args {incr t $a}; return $t}\nsum 1 2 3 4",
	"proc f {} {return a}; proc f {} {return b}; f",
	// Loops with break/continue.
	"set r {}; for {set i 0} {$i < 6} {incr i} {if {$i == 2} continue; if {$i == 5} break; lappend r $i}; set r",
	"set i 0; while {$i < 10} {incr i; if {$i > 4} break}; set i",
	"set out {}; foreach {a b} {1 2 3 4} {lappend out $b $a}; set out",
	// Expressions: operators, functions, ternary, short-circuit.
	"expr {3 + 4 * 2}",
	"expr {1 ? \"yes\" : \"no\"}",
	"expr {0 && [error never]}",
	"expr {min(3, 1, 2) + max(4, 5)}",
	"expr {\"abc\" == \"abc\" && 2 < 10}",
	"set x 7; expr {$x % 4}",
	// Nested substitutions.
	"set a 5; set b a; set $b 6; set a",
	"set k x; set m(x) hit; set m($k)",
	"set s \"len=[string length [list a b c]]\"",
	// String and list commands through procs.
	"proc rev {l} {set o {}; foreach e $l {set o [linsert $o 0 $e]}; set o}\nrev {1 2 3}",
	// Completion codes at top level.
	"proc early {} {foreach x {1 2 3} {return $x}}; early",
	// Runtime errors with traceback accumulation.
	"proc inner {} {error boom}; proc outer {} {inner}; outer",
	"set novar",
	"unknowncommand a b",
	"expr {1 +}",
	// Parse errors after a valid prefix.
	"set ran yes\nset x {oops",
	"puts first\nset x [unclosed",
	// Output-producing scripts.
	"foreach w {alpha beta gamma} {puts $w}",
	"proc p {} {puts inproc; return done}; p",
	// if/elseif/else chains.
	"set v 2; if {$v == 1} {set r one} elseif {$v == 2} {set r two} else {set r other}; set r",
	// Scripts exercising the expr fallback (non-compilable expressions
	// that still evaluate classically).
	"catch {expr {2 + bogusword}} msg; set msg",
}

// runDifferential evaluates src twice on the interpreter (the second
// pass hits the intern cache when enabled) and reports the results,
// error strings, accumulated output and final errorInfo.
func runDifferential(in *Interp, src string) (results, errs [2]string, out, errorInfo string) {
	for i := 0; i < 2; i++ {
		res, err := in.Eval(src)
		results[i] = res
		if err != nil {
			errs[i] = err.Error()
		}
	}
	out = in.Output()
	if info, err := in.Eval("set errorInfo"); err == nil {
		errorInfo = info
	}
	return
}

// TestDifferentialCachedVsUncached proves the compiled pipeline is
// semantically invisible: every snippet behaves identically with the
// intern caches enabled (compile once, evaluate twice) and disabled
// (fresh compile per evaluation).
func TestDifferentialCachedVsUncached(t *testing.T) {
	for _, src := range differentialCorpus {
		cached := New()
		uncached := New()
		uncached.SetScriptCacheSize(0)
		uncached.SetExprCacheSize(0)
		cr, ce, cout, cinfo := runDifferential(cached, src)
		ur, ue, uout, uinfo := runDifferential(uncached, src)
		if cr != ur {
			t.Errorf("script %q: results differ\ncached:   %q\nuncached: %q", src, cr, ur)
		}
		if ce != ue {
			t.Errorf("script %q: errors differ\ncached:   %q\nuncached: %q", src, ce, ue)
		}
		if cout != uout {
			t.Errorf("script %q: output differs\ncached:   %q\nuncached: %q", src, cout, uout)
		}
		if cinfo != uinfo {
			t.Errorf("script %q: errorInfo differs\ncached:\n%s\nuncached:\n%s", src, cinfo, uinfo)
		}
	}
}

// TestDifferentialEvalScriptVsEval proves that evaluating a
// pre-compiled Script matches evaluating its source, including the
// replay of parse errors after a valid prefix.
func TestDifferentialEvalScriptVsEval(t *testing.T) {
	for _, src := range differentialCorpus {
		s, _ := Compile(src)
		compiled := New()
		plain := New()
		plain.SetScriptCacheSize(0)
		plain.SetExprCacheSize(0)
		var cr, pr, ce, pe [2]string
		for i := 0; i < 2; i++ {
			res, err := compiled.EvalScript(s)
			cr[i] = res
			if err != nil {
				ce[i] = err.Error()
			}
			res, err = plain.Eval(src)
			pr[i] = res
			if err != nil {
				pe[i] = err.Error()
			}
		}
		if cr != pr || ce != pe {
			t.Errorf("script %q: EvalScript (%q, %q) != Eval (%q, %q)", src, cr, ce, pr, pe)
		}
		if cout, pout := compiled.Output(), plain.Output(); cout != pout {
			t.Errorf("script %q: output differs\nEvalScript: %q\nEval:       %q", src, cout, pout)
		}
	}
}
