package tcl

// This file exposes a read-only view of a compiled Script so that
// tools outside the interpreter — most importantly the wafecheck
// linter in internal/analysis — can walk every command word with byte
// positions without re-implementing the parser. The views are cheap
// wrappers over the internal command/word/token lists; they never
// mutate the Script.

// PartKind classifies one substitution part of a word.
type PartKind int

const (
	PartText    PartKind = iota // literal text
	PartVar                     // $name, ${name} or $name(index)
	PartCommand                 // [script]
)

// Part is one token of a word: literal text, a variable reference, or
// a bracketed command substitution.
type Part struct {
	Kind PartKind
	// Pos is the byte offset of the part in the Script's Source ('$'
	// for variables, '[' for command substitutions).
	Pos int
	// Text is the literal text (PartText), the variable name (PartVar)
	// or the nested script source (PartCommand).
	Text string
	// HasIndex reports that a PartVar had the form $name(index); Index
	// holds the index's own parts.
	HasIndex bool
	Index    []Part
	// Script is the compiled nested script of a PartCommand. Its word
	// positions are relative to its own Source, which starts at Pos+1
	// in the enclosing Source.
	Script *Script
}

// WordView is one word of a command.
type WordView struct {
	// Pos is the byte offset of the word's first character in the
	// Script's Source (the opening brace or quote for braced/quoted
	// words).
	Pos int
	// Form is '{' for braced words, '"' for quoted words, 0 for bare
	// words. Braced words are literal: no substitution happens inside.
	Form byte
	// Parts are the word's substitution parts in order.
	Parts []Part
}

// Literal returns the word's value and true when the word is fully
// literal (no variable or command substitution), which is the only
// case where a static checker can know the runtime string.
func (w WordView) Literal() (string, bool) {
	var out string
	for _, p := range w.Parts {
		if p.Kind != PartText {
			return "", false
		}
		out += p.Text
	}
	return out, true
}

// CommandView is one parsed command: its words in order. Pos is the
// offset of the first word.
type CommandView struct {
	Pos   int
	Words []WordView
}

// Commands returns a view of every parsed command in the script, in
// source order. When the script has a parse error the well-formed
// prefix is still returned (mirroring evaluation, which runs that
// prefix before reporting the error).
func (s *Script) Commands() []CommandView {
	out := make([]CommandView, 0, len(s.cmds))
	for _, c := range s.cmds {
		cv := CommandView{Words: make([]WordView, 0, len(c.words))}
		for _, w := range c.words {
			cv.Words = append(cv.Words, WordView{Pos: w.pos, Form: w.form, Parts: viewTokens(w.tokens)})
		}
		if len(cv.Words) > 0 {
			cv.Pos = cv.Words[0].Pos
		}
		out = append(out, cv)
	}
	return out
}

func viewTokens(toks []token) []Part {
	out := make([]Part, 0, len(toks))
	for _, t := range toks {
		p := Part{Pos: t.pos, Text: t.text}
		switch t.kind {
		case tokText:
			p.Kind = PartText
		case tokVar:
			p.Kind = PartVar
			if t.hasIdx {
				p.HasIndex = true
				p.Index = viewTokens(t.index)
			}
		case tokCommand:
			p.Kind = PartCommand
			p.Script = t.script
			if p.Script == nil {
				// Standalone-parsed tokens carry no compiled script;
				// compile one so callers can always recurse.
				p.Script = compileScript(t.text)
			}
		}
		out = append(out, p)
	}
	return out
}
