package tcl

import (
	"strings"
	"testing"
)

// --- parser edge cases -------------------------------------------------------

func TestBackslashNewlineContinuation(t *testing.T) {
	in := New()
	// Between bare words a backslash-newline is a word separator, so a
	// command continues on the next line.
	wantEval(t, in, "list a\\\nb", "a b")
	wantEval(t, in, "set x [list 1 \\\n 2 \\\n 3]", "1 2 3")
	wantEval(t, in, "expr 1 + \\\n 2", "3")
	// A bare word ends at the continuation; more words may follow it.
	wantEval(t, in, "list ab\\\ncd", "ab cd")
	// Inside double quotes the backslash-newline plus following blanks
	// collapses to a single space within the word.
	wantEval(t, in, "set x \"ab\\\n   cd\"", "ab cd")
	// Inside braces it stays verbatim (the body substitutes later).
	wantEval(t, in, "set b {ab\\\ncd}; string length $b", "6")
	// After a close-brace it terminates the word like whitespace.
	wantEval(t, in, "list {a}\\\n{b}", "a b")
}

func TestBracketInsideDoubleQuotes(t *testing.T) {
	in := New()
	wantEval(t, in, `set x "a[string length bcd]e"`, "a3e")
	// Nested quotes inside the bracketed command are independent of the
	// enclosing quoted word.
	wantEval(t, in, `set x "pre [string range "hello" 1 3] post"`, "pre ell post")
	// An escaped bracket is literal, not a command substitution.
	wantEval(t, in, `set x "\[string length bcd]"`, "[string length bcd]")
	// Brackets nest inside the substitution.
	wantEval(t, in, `set x "v=[string length [string range abcdef 0 2]]"`, "v=3")
}

func TestArrayIndexSubstitution(t *testing.T) {
	in := New()
	evalOK(t, in, "set a(one1) first")
	evalOK(t, in, "set k one")
	// $var inside the index.
	wantEval(t, in, `set a(${k}1)`, "first")
	// [cmd] inside the index.
	wantEval(t, in, `set a([string range one1xx 0 3])`, "first")
	// Mixed $var and [cmd].
	wantEval(t, in, `set a($k[string index 123 0])`, "first")
	// The same forms during read-substitution in a quoted word.
	wantEval(t, in, `set r "got $a($k[string index 123 0])"`, "got first")
}

func TestUnterminatedConstructErrors(t *testing.T) {
	in := New()
	wantErr(t, in, "set x {abc", "missing close-brace")
	wantErr(t, in, "set x [string length abc", "missing close-bracket")
	wantErr(t, in, `set x "abc`, "missing closing quote")
	wantErr(t, in, "set x ${abc", "missing close-brace for variable name")
	wantErr(t, in, "set x {a}b", "extra characters after close-brace")
	wantErr(t, in, `set x "a"b`, "extra characters after close-quote")
}

func TestParseErrorAfterValidPrefix(t *testing.T) {
	// The commands before a malformed one still run — the compiled
	// pipeline replays the parse error only when evaluation reaches it,
	// exactly like the incremental parser.
	in := New()
	_, err := in.Eval("set ran yes\nset x {oops")
	if err == nil || !strings.Contains(err.Error(), "missing close-brace") {
		t.Fatalf("want missing close-brace error, got %v", err)
	}
	wantEval(t, in, "set ran", "yes")
}

// --- compiled scripts --------------------------------------------------------

func TestCompileAndEvalScript(t *testing.T) {
	s, err := Compile("set x 1; set y [expr $x+1]; list $x $y")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !s.IsComplete() {
		t.Fatal("script should be complete")
	}
	in := New()
	for i := 0; i < 3; i++ {
		res, err := in.EvalScript(s)
		if err != nil || res != "1 2" {
			t.Fatalf("EvalScript pass %d = %q, %v", i, res, err)
		}
	}
	// The same Script is valid on another interpreter: command names
	// resolve at invocation time.
	in2 := New()
	if res, err := in2.EvalScript(s); err != nil || res != "1 2" {
		t.Fatalf("EvalScript on second interp = %q, %v", res, err)
	}
}

func TestCompileMalformedScript(t *testing.T) {
	s, err := Compile("set ran yes\nset x [oops")
	if err == nil || !strings.Contains(err.Error(), "missing close-bracket") {
		t.Fatalf("Compile error = %v, want missing close-bracket", err)
	}
	if s == nil || s.IsComplete() {
		t.Fatal("malformed source must yield an incomplete, evaluable Script")
	}
	// The prefix still runs before the error is replayed.
	in := New()
	if _, err := in.EvalScript(s); err == nil || !strings.Contains(err.Error(), "missing close-bracket") {
		t.Fatalf("EvalScript error = %v", err)
	}
	wantEval(t, in, "set ran", "yes")
}

func TestScriptCacheInterning(t *testing.T) {
	in := New()
	in.SetScriptCacheSize(4)
	evalOK(t, in, "set x 1")
	if in.ScriptCacheLen() == 0 {
		t.Fatal("expected the evaluated script to be interned")
	}
	// The cache is LRU-bounded: distinct sources beyond the capacity
	// evict, they do not grow the cache.
	for _, src := range []string{"set a 1", "set b 2", "set c 3", "set d 4", "set e 5", "set f 6"} {
		evalOK(t, in, src)
	}
	if n := in.ScriptCacheLen(); n > 4 {
		t.Fatalf("cache grew to %d entries, capacity is 4", n)
	}
	// Size zero disables interning but evaluation still works.
	in.SetScriptCacheSize(0)
	wantEval(t, in, "set x 2", "2")
	if n := in.ScriptCacheLen(); n != 0 {
		t.Fatalf("disabled cache holds %d entries", n)
	}
}

func TestProcRedefinitionUsesNewBody(t *testing.T) {
	// Proc bodies are compiled once per Proc value; redefining installs
	// a fresh Proc, so no stale compiled body can survive.
	in := New()
	evalOK(t, in, "proc f {} {return a}")
	wantEval(t, in, "f", "a")
	evalOK(t, in, "proc f {} {return b}")
	wantEval(t, in, "f", "b")
	// Renaming keeps the compiled body with the proc.
	evalOK(t, in, "rename f g")
	wantEval(t, in, "g", "b")
	evalOK(t, in, "proc f {} {return c}")
	wantEval(t, in, "f", "c")
	wantEval(t, in, "g", "b")
}

func TestCachedEvalPreservesTraceback(t *testing.T) {
	// errorInfo accumulates the same traceback whether the script comes
	// from the cache or compiles fresh.
	collect := func(in *Interp) string {
		if _, err := in.Eval("proc inner {} {error boom}\nproc outer {} {inner}"); err != nil {
			t.Fatalf("defining procs: %v", err)
		}
		if _, err := in.Eval("outer"); err == nil {
			t.Fatal("expected error from outer")
		}
		info, err := in.Eval("set errorInfo")
		if err != nil {
			t.Fatalf("reading errorInfo: %v", err)
		}
		return info
	}
	cached := New()
	uncached := New()
	uncached.SetScriptCacheSize(0)
	uncached.SetExprCacheSize(0)
	if a, b := collect(cached), collect(uncached); a != b {
		t.Errorf("tracebacks differ:\ncached:\n%s\nuncached:\n%s", a, b)
	}
}
