package tcl

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// genListElement produces strings covering the quoting-relevant
// character space (braces, brackets, spaces, backslashes, dollars).
func genListElement(r *rand.Rand) string {
	alphabet := []rune("ab {}[]$\\\"; \t\n")
	n := r.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(alphabet[r.Intn(len(alphabet))])
	}
	return b.String()
}

type elementList []string

// Generate implements quick.Generator with the hostile alphabet.
func (elementList) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(6)
	out := make(elementList, n)
	for i := range out {
		out[i] = genListElement(r)
	}
	return reflect.ValueOf(out)
}

// Property: FormatList/ParseList round-trip for arbitrary elements.
func TestListRoundTripProperty(t *testing.T) {
	f := func(elems elementList) bool {
		formatted := FormatList(elems)
		parsed, err := ParseList(formatted)
		if err != nil {
			t.Logf("ParseList(%q) error: %v", formatted, err)
			return false
		}
		if len(parsed) != len(elems) {
			t.Logf("len mismatch: %q → %q", []string(elems), parsed)
			return false
		}
		for i := range elems {
			if parsed[i] != elems[i] {
				t.Logf("element %d: %q → %q (via %q)", i, elems[i], parsed[i], formatted)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: QuoteListElement always yields exactly one element.
func TestQuoteSingleElementProperty(t *testing.T) {
	f := func(raw []byte) bool {
		s := string(raw)
		if !strings.Contains(s, "\x00") && len(s) < 64 {
			q := QuoteListElement(s)
			parsed, err := ParseList(q)
			if err != nil || len(parsed) != 1 || parsed[0] != s {
				t.Logf("%q → %q → %v (%v)", s, q, parsed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: expr integer arithmetic matches Go for + - * and
// comparison operators.
func TestExprMatchesGoProperty(t *testing.T) {
	in := New()
	f := func(a, b int16) bool {
		ai, bi := int64(a), int64(b)
		cases := map[string]int64{
			fmt.Sprintf("%d+%d", ai, bi):  ai + bi,
			fmt.Sprintf("%d-%d", ai, bi):  ai - bi,
			fmt.Sprintf("%d*%d", ai, bi):  ai * bi,
			fmt.Sprintf("%d<%d", ai, bi):  b2i(ai < bi),
			fmt.Sprintf("%d>=%d", ai, bi): b2i(ai >= bi),
			fmt.Sprintf("%d==%d", ai, bi): b2i(ai == bi),
		}
		for expr, want := range cases {
			got, err := in.ExprEval(expr)
			if err != nil {
				t.Logf("expr %q: %v", expr, err)
				return false
			}
			if got != strconv.FormatInt(want, 10) {
				t.Logf("expr %q = %s, want %d", expr, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Tcl integer division/modulo satisfy the Euclidean-ish
// invariant n = (n/d)*d + n%d with 0 <= |n%d| < |d| and the sign of the
// remainder following the divisor.
func TestExprDivModProperty(t *testing.T) {
	in := New()
	f := func(n int16, d int16) bool {
		if d == 0 {
			return true
		}
		q, err1 := in.ExprEval(fmt.Sprintf("%d/%d", n, d))
		m, err2 := in.ExprEval(fmt.Sprintf("%d%%%d", n, d))
		if err1 != nil || err2 != nil {
			return false
		}
		qi, _ := strconv.ParseInt(q, 10, 64)
		mi, _ := strconv.ParseInt(m, 10, 64)
		if qi*int64(d)+mi != int64(n) {
			t.Logf("%d/%d=%d rem %d: identity violated", n, d, qi, mi)
			return false
		}
		if mi != 0 && (mi < 0) != (d < 0) {
			t.Logf("%d%%%d=%d: sign does not follow divisor", n, d, mi)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: glob * ? matching agrees with a reference regexp
// translation for patterns without character classes.
func TestGlobMatchesReferenceProperty(t *testing.T) {
	f := func(patRaw, sRaw []byte) bool {
		pat := sanitizeGlob(patRaw)
		s := sanitizeGlob(sRaw)
		want := refGlob(pat, s)
		got := GlobMatch(pat, s)
		if got != want {
			t.Logf("GlobMatch(%q, %q) = %v, reference %v", pat, s, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func sanitizeGlob(raw []byte) string {
	alphabet := "ab*?c"
	var b strings.Builder
	for _, c := range raw {
		if len(raw) > 10 {
			raw = raw[:10]
		}
		b.WriteByte(alphabet[int(c)%len(alphabet)])
		if b.Len() >= 8 {
			break
		}
	}
	return b.String()
}

// refGlob is a simple exponential reference implementation.
func refGlob(p, s string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '*':
		for i := 0; i <= len(s); i++ {
			if refGlob(p[1:], s[i:]) {
				return true
			}
		}
		return false
	case '?':
		return s != "" && refGlob(p[1:], s[1:])
	default:
		return s != "" && s[0] == p[0] && refGlob(p[1:], s[1:])
	}
}

// Property: format %d agrees with Go's Sprintf for random widths.
func TestFormatIntProperty(t *testing.T) {
	f := func(n int32, w uint8) bool {
		width := int(w % 12)
		spec := fmt.Sprintf("%%%dd", width)
		got, err := FormatTcl(spec, []string{strconv.Itoa(int(n))})
		if err != nil {
			return false
		}
		want := fmt.Sprintf(spec, n)
		if got != want {
			t.Logf("format %q %d = %q, want %q", spec, n, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: set/get round-trips arbitrary values through variables and
// array elements.
func TestVariableRoundTripProperty(t *testing.T) {
	in := New()
	f := func(raw []byte) bool {
		val := string(raw)
		if strings.ContainsAny(val, "\x00") || len(val) > 100 {
			return true
		}
		if err := in.SetVar("v", val); err != nil {
			return false
		}
		got, err := in.GetVar("v")
		if err != nil || got != val {
			return false
		}
		if err := in.SetVar("arr(key)", val); err != nil {
			return false
		}
		got, err = in.GetVar("arr(key)")
		return err == nil && got == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: dictCompare is a total order (antisymmetric, reflexive).
func TestDictCompareOrderProperty(t *testing.T) {
	f := func(aRaw, bRaw []byte) bool {
		a, b := string(aRaw), string(bRaw)
		ab := dictCompare(a, b)
		ba := dictCompare(b, a)
		if dictCompare(a, a) != 0 {
			return false
		}
		if ab == 0 {
			return ba == 0
		}
		return ab == -ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
