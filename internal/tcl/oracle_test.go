package tcl

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// This file is the differential oracle of execution engine v2: the
// tree walker (EngineTree) defines the semantics, and every test here
// checks that the bytecode engine (EngineBytecode) is observationally
// identical — results, error strings, accumulated output, errorInfo
// tracebacks, and the final global variable state.

// oracleRun evaluates src on a fresh interpreter with the given engine
// and reports everything an engine difference could show up in.
func oracleRun(e Engine, src string) (result, errstr, out, errorInfo, vars string) {
	in := New()
	in.SetEngine(e)
	res, err := in.Eval(src)
	result = res
	if err != nil {
		errstr = err.Error()
	}
	out = in.Output()
	if info, e := in.Eval("set errorInfo"); e == nil {
		errorInfo = info
	}
	vars = globalVarDump(in)
	return
}

// globalVarDump renders the global frame's variables in sorted order:
// scalars as name=value, arrays as name(idx)=value per element.
func globalVarDump(in *Interp) string {
	f := in.globalFrame()
	var lines []string
	for name, v := range f.vars {
		if name == "errorInfo" {
			continue
		}
		rv := v.resolve()
		if rv.isArray {
			for idx, val := range rv.arr {
				lines = append(lines, name+"("+idx+")="+val)
			}
			continue
		}
		lines = append(lines, name+"="+rv.val.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// oracleCheck runs src under both engines and reports any divergence.
func oracleCheck(t *testing.T, src string) {
	t.Helper()
	tr, te, tout, tinfo, tvars := oracleRun(EngineTree, src)
	br, be, bout, binfo, bvars := oracleRun(EngineBytecode, src)
	if tr != br {
		t.Errorf("script %q: results differ\ntree:     %q\nbytecode: %q", src, tr, br)
	}
	if te != be {
		t.Errorf("script %q: errors differ\ntree:     %q\nbytecode: %q", src, te, be)
	}
	if tout != bout {
		t.Errorf("script %q: output differs\ntree:     %q\nbytecode: %q", src, tout, bout)
	}
	if tinfo != binfo {
		t.Errorf("script %q: errorInfo differs\ntree:\n%s\nbytecode:\n%s", src, tinfo, binfo)
	}
	if tvars != bvars {
		t.Errorf("script %q: global variables differ\ntree:\n%s\nbytecode:\n%s", src, tvars, bvars)
	}
}

// TestOracleEngineCorpus runs the shared differential corpus — every
// construct the compiled pipeline caches — under both engines.
func TestOracleEngineCorpus(t *testing.T) {
	for _, src := range differentialCorpus {
		oracleCheck(t, src)
	}
}

// TestOracleEngineSweep pins the behaviors found (or deliberately
// preserved) during the bug sweep of the tree walker. Each entry is a
// golden: both engines must agree, and where a value is asserted it is
// the classic Tcl answer.
func TestOracleEngineSweep(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		// Integer-syntax literals that overflow int64 must raise
		// "integer value too large to represent", not round through the
		// float parser (the seed silently rounded).
		{"int-overflow-literal", "catch {expr {9223372036854775808 + 0}} m; set m"},
		{"int-overflow-var", "set x 9223372036854775808; catch {expr {$x + 1}} m; set m"},
		{"int-overflow-incr", "set x 99999999999999999999; catch {incr x} m; set m"},
		// incr accepts what the base-0 integer parser accepts —
		// surrounding whitespace, hex, a leading sign — and rejects the
		// rest with the classic message.
		{"incr-whitespace", "set x { 5 }; incr x 2"},
		{"incr-hex", "set x 0x10; incr x"},
		{"incr-plus-sign", "set x +5; catch {incr x 2} m; set m"},
		{"incr-float-reject", "set x 1.5; catch {incr x} m; set m"},
		{"incr-creates", "incr fresh 3; set fresh"},
		// A break raised by for's next script terminates the loop
		// (Tcl_ForObjCmd), while one from the body does the same; both
		// must agree between the engines and the specialized opcode.
		{"for-next-break", "set r {}; for {set i 0} {$i < 5} {if {$i == 2} break; incr i} {lappend r $i}; set r"},
		{"for-body-break", "set r {}; for {set i 0} {$i < 5} {incr i} {if {$i == 3} break; lappend r $i}; set r"},
		{"while-continue", "set r {}; set i 0; while {$i < 6} {incr i; if {$i % 2} continue; lappend r $i}; set r"},
		// Canonical-spelling boundary: "09" and " 7" must stay strings
		// (the numeric parsers disagree about them), so expr sees the
		// classic behavior.
		{"octal-like-string", "set x 09; catch {expr {$x + 1}} m; set m"},
		{"leading-space-number", "set x { 7}; expr {$x + 1}"},
		// Division and modulo: floor semantics and divide-by-zero.
		{"floor-div", "expr {-7 / 2}"},
		{"floor-mod", "expr {-7 % 2}"},
		{"div-zero", "catch {expr {1 / 0}} m; set m"},
		{"mod-zero", "set a 1; set b 0; catch {expr {$a % $b}} m; set m"},
		// Float storage round-trips through the 12-digit rendering.
		{"float-roundtrip", "set x [expr {1.0 / 3}]; expr {$x == 0.333333333333}"},
		// upvar aliasing observed through the specialized opcodes.
		{"upvar-set", "proc bump {v} {upvar $v x; set x [expr {$x + 1}]}\nset n 5; bump n; bump n; set n"},
		{"upvar-incr", "proc bump {v} {upvar $v x; incr x 10}\nset n 1; bump n; set n"},
		// unset / re-create between loop iterations (varRef invalidation).
		{"unset-in-loop", "set r {}; for {set i 0} {$i < 3} {incr i} {set t $i; lappend r $t; unset t}; set r"},
		// A scalar turning into an array mid-script.
		{"scalar-to-array", "catch {set x 1; set x(k) v} m; set m"},
		{"array-after-unset", "set x 1; unset x; set x(k) v; set x(k)"},
		// Rebinding a specialized command must route the specialized
		// opcodes back through the command table.
		{"rebind-incr", "rename incr _incr\nproc incr {v} {uplevel _incr $v 100}\nset n 1; incr n\nset n"},
		{"rebind-expr", "rename expr _expr\nproc expr {args} {return fixed}\nset a [expr 1 + 1]\nset b [expr {2 + 2}]\nlist $a $b"},
		// Errors inside loop conditions and bodies.
		{"while-cond-error", "set i 0; catch {while {$i <} {incr i}} m; set m"},
		{"for-body-error", "catch {for {set i 0} {$i < 3} {incr i} {error boom$i}} m; set m"},
		{"while-body-error-info", "proc p {} {set i 0; while {$i < 3} {incr i; badcmd}}\ncatch p m; set m"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { oracleCheck(t, c.src) })
	}
}

// scriptGen produces random but always-terminating Tcl scripts from a
// small grammar biased toward the constructs the bytecode engine
// specializes: scalar set/incr, expr in every spelling, while/for with
// literal braced parts, procs with upvar, catch, unset, arrays.
type scriptGen struct {
	r *rand.Rand
}

func (g *scriptGen) pick(ss ...string) string { return ss[g.r.Intn(len(ss))] }

func (g *scriptGen) varName() string { return g.pick("a", "b", "c", "d", "x", "y") }

func (g *scriptGen) operand() string {
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprintf("%d", g.r.Intn(200)-100)
	case 1:
		return "$" + g.varName()
	case 2:
		return fmt.Sprintf("%d.%d", g.r.Intn(10), g.r.Intn(100))
	case 3:
		return g.pick("09", "0x1f", "{ 12 }", "9223372036854775808")
	default:
		return fmt.Sprintf("%d", g.r.Intn(10))
	}
}

func (g *scriptGen) exprSrc() string {
	op := g.pick("+", "-", "*", "/", "%", "<", "<=", "==", "!=", ">=", ">")
	e := g.operand() + " " + op + " " + g.operand()
	if g.r.Intn(4) == 0 {
		e = e + " " + g.pick("+", "*", "&&", "||") + " " + g.operand()
	}
	return e
}

func (g *scriptGen) stmt(depth int) string {
	n := g.r.Intn(10)
	if depth > 2 && n > 5 {
		n = g.r.Intn(6) // no nesting past depth 2
	}
	v := g.varName()
	switch n {
	case 0:
		return "set " + v + " " + g.operand()
	case 1:
		return "incr " + v + " " + fmt.Sprintf("%d", g.r.Intn(7)-3)
	case 2:
		return "catch {expr {" + g.exprSrc() + "}} " + v
	case 3:
		return "catch {expr " + g.exprSrc() + "} " + v
	case 4:
		return "lappend r [catch {set " + v + "}]"
	case 5:
		return "catch {unset " + v + "}"
	case 6:
		// The counter is unique per nesting depth: a nested loop must
		// not reset an outer loop's counter, or the script never ends.
		i := fmt.Sprintf("i%d", depth)
		return "for {set " + i + " 0} {$" + i + " < " + fmt.Sprintf("%d", 1+g.r.Intn(4)) +
			"} {incr " + i + "} {" + g.stmt(depth+1) + "}"
	case 7:
		i := fmt.Sprintf("j%d", depth)
		return "set " + i + " 0; while {$" + i + " < " + fmt.Sprintf("%d", 1+g.r.Intn(4)) +
			"} {incr " + i + "; " + g.stmt(depth+1) + "}"
	case 8:
		return "if {" + g.exprSrc() + "} {" + g.stmt(depth+1) + "} else {" + g.stmt(depth+1) + "}"
	default:
		return "proc p" + v + " {q} {upvar $q t; " + g.stmt(depth+1) + "; return $t}\ncatch {p" + v + " " + v + "} " + v
	}
}

func (g *scriptGen) script() string {
	var b strings.Builder
	b.WriteString("set r {}\n")
	for i, n := 0, 2+g.r.Intn(6); i < n; i++ {
		b.WriteString(g.stmt(0))
		b.WriteByte('\n')
	}
	b.WriteString("lappend r done\nset r")
	return b.String()
}

// TestOracleRandomized cross-checks the engines over generated
// scripts. The seed is fixed so failures replay; bump oracleFuzzN for
// a deeper local sweep.
func TestOracleRandomized(t *testing.T) {
	const oracleFuzzN = 400
	g := &scriptGen{r: rand.New(rand.NewSource(0x0a11ce))}
	for i := 0; i < oracleFuzzN; i++ {
		src := g.script()
		t.Run(fmt.Sprintf("seed0/%03d", i), func(t *testing.T) { oracleCheck(t, src) })
	}
}
