package tcl

import (
	"strconv"
	"strings"
)

// This file is the bytecode compiler of execution engine v2. It lowers
// a parsed Script (the command/word/token lists of script.go) one step
// further into a register Program: a flat instruction list plus operand
// tables. Each source command compiles to a short run of word
// instructions that fill a register window, terminated by a dispatch
// instruction; a handful of hot command shapes (set, incr, expr with a
// literal or reconstructible argument) compile to dedicated opcodes
// that skip argv construction and the command table entirely.
//
// The compiler is purely syntactic and interpreter-independent, but
// Programs are cached per interpreter (interp.progCache) because they
// embed mutable inline dispatch caches.

type op uint8

const (
	// Word instructions: compute one word into a register.
	opConst  op = iota // regs[c] = consts[a]
	opVar              // regs[c] = scalar variable names[a] (typed read)
	opWord             // regs[c] = generic substitution of words[a]
	opScript           // regs[c] = result of nested script subs[a]

	// Dispatch instructions: exactly one terminates every command.
	opInvoke   // argv = regs[a : a+b] stringified; dispatch via cache site c (-1 = uncached)
	opSet      // names[a] <- regs[b]; result is the stored value
	opIncr     // names[a] += b; result is the new value
	opExpr     // result = typed evaluation of exprs[a]
	opExprTmpl // result = typed evaluation of tmpls[a], bailing to classic on impure operands
	opWhile    // loops[a]: while {cond} {body} with pre-compiled cond and pre-parsed body
	opFor      // loops[a]: for {init} {cond} {next} {body}, all pre-compiled
)

type insn struct {
	op      op
	a, b, c int32
}

// dispatchCache is one inline cache site: the command resolved for a
// literal name, valid while the interpreter's cmdGen matches.
type dispatchCache struct {
	gen uint64
	fn  CommandFunc
}

// loopInfo is the operand record of a specialized loop: the condition
// compiled to a typed expression AST (evaluated directly each
// iteration, skipping ExprBool's per-call source-cache lookup) and the
// loop scripts pre-parsed (skipping the per-invocation script-cache
// lookups the generic commands pay). init and next are nil for while.
type loopInfo struct {
	cond             exprNode
	init, next, body loopScript
}

// loopScript is a loop's pre-parsed script together with its compiled
// Program, resolved once at loop-compile time so iterations skip the
// per-call Program cache lookup.
type loopScript struct {
	script *Script
	prog   *Program
}

// exprTemplate is a compiled multi-word expr: the AST of the
// reconstructed source with every variable reference replaced by a
// slot, plus the slot variable names in fetch order. See
// buildExprTemplate for the equivalence argument.
type exprTemplate struct {
	node exprNode
	vars []string
	// refs are the per-slot variable-pointer caches, parallel to vars.
	refs []varRef
	// fastOp (non-"") marks a template that is exactly one binary
	// operator over two slots — the dominant shape of loop-carried
	// arithmetic like [expr $n % $d]. When both slot values are ints,
	// the evaluator runs intBinaryFast directly, skipping the AST walk;
	// any other case (floats, div-by-zero, eq/ne) takes the general
	// path, keeping applyBinary's exact semantics and error surface.
	fastOp       string
	fastL, fastR int
}

// progCmd is the per-source-command record: its instruction range
// (insns[end-1] is the dispatch instruction), the original parsed
// command (for the profiler handoff and the expr-template bail path),
// and its index in the Script's command list so the tree walker can
// resume mid-script.
type progCmd struct {
	start, end int32
	srcIdx     int
	src        *parsedCommand
}

// Program is a compiled register-bytecode form of a Script.
type Program struct {
	script *Script
	insns  []insn
	cmds   []progCmd

	consts []Value
	names  []string
	words  []word
	subs   []*Script
	exprs  []exprNode
	tmpls  []*exprTemplate
	loops  []loopInfo
	caches []dispatchCache
	// vrefs are per-site variable-pointer caches, parallel to names:
	// the site that reads or writes names[i] validates vrefs[i] against
	// the current frame id and the interpreter's variable epoch. A
	// Program belongs to exactly one interpreter (progCache is
	// per-interp), which is what makes frame ids — unique only within
	// one interpreter — a sound cache key.
	vrefs []varRef

	// nregs is the register window size: the maximum word count of any
	// command in the script.
	nregs int
}

// progCacheMax bounds the per-interpreter Script->Program cache; when
// it fills (only plausible with the source intern cache disabled), the
// whole map is dropped and rebuilt on demand.
const progCacheMax = 1024

// program returns the cached Program for s, compiling on first use.
func (in *Interp) program(s *Script) *Program {
	if p, ok := in.progCache[s]; ok {
		return p
	}
	if in.progCache == nil {
		in.progCache = make(map[*Script]*Program, 64)
	} else if len(in.progCache) >= progCacheMax {
		in.progCache = make(map[*Script]*Program, 64)
	}
	p := in.compileProgram(s)
	in.progCache[s] = p
	return p
}

// compileProgram lowers every command of s. Specialized opcodes are
// only emitted while set/incr/expr are known to be the builtins
// (specialGen == specialBase); see the interp fields.
func (in *Interp) compileProgram(s *Script) *Program {
	p := &Program{script: s}
	c := &progCompiler{in: in, p: p, specialize: in.specialGen == in.specialBase}
	for i, cmd := range s.cmds {
		c.compileCommand(i, cmd)
	}
	p.vrefs = make([]varRef, len(p.names))
	return p
}

type progCompiler struct {
	// in is only used to pre-parse loop scripts through the shared
	// script intern cache; compilation is otherwise
	// interpreter-independent.
	in         *Interp
	p          *Program
	specialize bool
}

func (c *progCompiler) emit(i insn) { c.p.insns = append(c.p.insns, i) }

func (c *progCompiler) needRegs(n int) {
	if n > c.p.nregs {
		c.p.nregs = n
	}
}

// wordLiteral returns the literal text of a word that needs no
// substitution (a single text token), ok=false otherwise.
func wordLiteral(w word) (string, bool) {
	if len(w.tokens) == 1 && w.tokens[0].kind == tokText {
		return w.tokens[0].text, true
	}
	return "", false
}

func (c *progCompiler) addConst(v Value) int32 {
	c.p.consts = append(c.p.consts, v)
	return int32(len(c.p.consts) - 1)
}

func (c *progCompiler) addName(n string) int32 {
	for i, e := range c.p.names {
		if e == n {
			return int32(i)
		}
	}
	c.p.names = append(c.p.names, n)
	return int32(len(c.p.names) - 1)
}

func (c *progCompiler) compileCommand(srcIdx int, cmd *parsedCommand) {
	words := cmd.words
	if len(words) == 0 {
		return
	}
	pc := progCmd{start: int32(len(c.p.insns)), srcIdx: srcIdx, src: cmd}
	name, nameLit := wordLiteral(words[0])
	if !c.specialize || !nameLit || !c.trySpecialize(name, cmd) {
		c.compileGeneric(words, nameLit)
	}
	pc.end = int32(len(c.p.insns))
	c.p.cmds = append(c.p.cmds, pc)
}

// trySpecialize emits a dedicated instruction sequence for the hot
// command shapes; it reports false (emitting nothing) when the shape
// does not qualify, leaving the command to generic dispatch.
func (c *progCompiler) trySpecialize(name string, cmd *parsedCommand) bool {
	words := cmd.words
	switch name {
	case "set":
		// set NAME value — NAME a literal plain scalar (array
		// references keep the classic path and its error surface).
		if len(words) != 3 {
			return false
		}
		vn, ok := wordLiteral(words[1])
		if !ok {
			return false
		}
		if _, _, isArr := splitArrayRef(vn); isArr {
			return false
		}
		c.needRegs(1)
		if !c.compileWordOp(words[2], 0) {
			c.p.words = append(c.p.words, words[2])
			c.emit(insn{op: opWord, a: int32(len(c.p.words) - 1), c: 0})
		}
		c.emit(insn{op: opSet, a: c.addName(vn), b: 0})
		return true
	case "incr":
		// incr NAME ?literal-int? — delta parsed at compile time with
		// the same trimmed base-0 rules cmdIncr applies at runtime; a
		// malformed literal keeps the classic path so the error text
		// is produced there.
		if len(words) != 2 && len(words) != 3 {
			return false
		}
		vn, ok := wordLiteral(words[1])
		if !ok {
			return false
		}
		if _, _, isArr := splitArrayRef(vn); isArr {
			return false
		}
		delta := int64(1)
		if len(words) == 3 {
			lit, ok := wordLiteral(words[2])
			if !ok {
				return false
			}
			d, err := strconv.ParseInt(strings.TrimSpace(lit), 0, 64)
			if err != nil || d != int64(int32(d)) {
				return false
			}
			delta = d
		}
		c.emit(insn{op: opIncr, a: c.addName(vn), b: int32(delta)})
		return true
	case "expr":
		if len(words) == 2 {
			if src, ok := wordLiteral(words[1]); ok {
				// expr {literal}: compile the expression once. A
				// source the expression compiler rejects keeps the
				// classic path, which interleaves substitution side
				// effects and errors in the original order.
				node, err := compileExprAST(src)
				if err != nil {
					return false
				}
				c.p.exprs = append(c.p.exprs, node)
				c.emit(insn{op: opExpr, a: int32(len(c.p.exprs) - 1)})
				return true
			}
		}
		if idx, ok := c.buildExprTemplate(words[1:]); ok {
			c.emit(insn{op: opExprTmpl, a: idx})
			return true
		}
		return false
	case "while":
		// while {cond} {body} — both literal words (the normal braced
		// spelling). The condition must compile as a typed expression;
		// sources the expression compiler rejects keep the generic path
		// so cmdWhile's classic per-iteration fallback (and its error
		// surface) runs instead.
		if len(words) != 3 {
			return false
		}
		condSrc, ok1 := wordLiteral(words[1])
		bodySrc, ok2 := wordLiteral(words[2])
		if !ok1 || !ok2 {
			return false
		}
		node, err := compileExprAST(condSrc)
		if err != nil {
			return false
		}
		c.p.loops = append(c.p.loops, loopInfo{cond: node, body: c.loopScript(bodySrc)})
		c.emit(insn{op: opWhile, a: int32(len(c.p.loops) - 1)})
		return true
	case "for":
		// for {init} {cond} {next} {body} — all four literal.
		if len(words) != 5 {
			return false
		}
		initSrc, ok1 := wordLiteral(words[1])
		condSrc, ok2 := wordLiteral(words[2])
		nextSrc, ok3 := wordLiteral(words[3])
		bodySrc, ok4 := wordLiteral(words[4])
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return false
		}
		node, err := compileExprAST(condSrc)
		if err != nil {
			return false
		}
		c.p.loops = append(c.p.loops, loopInfo{
			cond: node,
			init: c.loopScript(initSrc),
			next: c.loopScript(nextSrc),
			body: c.loopScript(bodySrc),
		})
		c.emit(insn{op: opFor, a: int32(len(c.p.loops) - 1)})
		return true
	}
	return false
}

// loopScript pre-parses a loop script and resolves its Program now,
// so loop iterations pay neither cache lookup. Termination: a loop
// script is a strict substring of the command being compiled, so the
// recursive compile cannot revisit the script it was called for.
func (c *progCompiler) loopScript(src string) loopScript {
	s := c.in.compileCached(src)
	return loopScript{script: s, prog: c.in.program(s)}
}

// compileGeneric emits one word instruction per word plus the dispatch
// instruction. The dispatch gets an inline cache site when the command
// name is literal.
func (c *progCompiler) compileGeneric(words []word, nameLit bool) {
	for i, w := range words {
		if !c.compileWordOp(w, int32(i)) {
			c.p.words = append(c.p.words, w)
			c.emit(insn{op: opWord, a: int32(len(c.p.words) - 1), c: int32(i)})
		}
	}
	c.needRegs(len(words))
	cacheIdx := int32(-1)
	if nameLit {
		c.p.caches = append(c.p.caches, dispatchCache{})
		cacheIdx = int32(len(c.p.caches) - 1)
	}
	c.emit(insn{op: opInvoke, a: 0, b: int32(len(words)), c: cacheIdx})
}

// compileWordOp emits the cheapest instruction that computes w into
// register dst, or reports false when only the generic substitution
// path (opWord) can handle it.
func (c *progCompiler) compileWordOp(w word, dst int32) bool {
	c.needRegs(int(dst) + 1)
	if len(w.tokens) != 1 {
		return false
	}
	t := w.tokens[0]
	switch t.kind {
	case tokText:
		// Interning numeric literals here means e.g. `set d 2` stores a
		// typed int, so later $d reads skip the string parse entirely.
		c.emit(insn{op: opConst, a: c.addConst(internValue(t.text)), c: dst})
		return true
	case tokVar:
		if t.hasIdx {
			return false
		}
		c.emit(insn{op: opVar, a: c.addName(t.text), c: dst})
		return true
	case tokCommand:
		if t.script == nil {
			return false
		}
		c.p.subs = append(c.p.subs, t.script)
		c.emit(insn{op: opScript, a: int32(len(c.p.subs) - 1), c: dst})
		return true
	}
	return false
}

// exprSafeText reports whether literal text can be spliced verbatim
// into reconstructed expression source without changing how the
// expression lexer would read it: no substitution triggers, no word
// or grouping structure, no whitespace.
func exprSafeText(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '$', '[', ']', '{', '}', '"', '\\', ' ', '\t', '\n', '\r', ';':
			return false
		}
	}
	return true
}

// buildExprTemplate compiles a multi-word expr into a reusable typed
// template. The classic command re-joins its substituted arguments and
// re-parses the result on every evaluation; the template instead
// compiles the expression shape once, with each $var as a slot that is
// filled at evaluation time.
//
// The two are equivalent only while every substituted value is a pure
// numeric literal as the expression lexer would scan it
// (pureNumberValue) — any other value could extend into operators,
// barewords, or whole subexpressions under re-parsing — so the
// evaluator (execExprTmpl) verifies purity per slot and bails to the
// classic join-and-parse path otherwise. Words that could change shape
// under reconstruction (braced or quoted words, command substitution,
// array references, escapes, a $var abutting more name characters)
// refuse template compilation outright.
func (c *progCompiler) buildExprTemplate(args []word) (int32, bool) {
	var b strings.Builder
	for wi, w := range args {
		if w.form != 0 || w.expand || len(w.tokens) == 0 {
			return 0, false
		}
		if wi > 0 {
			b.WriteByte(' ')
		}
		for ti, t := range w.tokens {
			switch t.kind {
			case tokText:
				if !exprSafeText(t.text) {
					return 0, false
				}
				b.WriteString(t.text)
			case tokVar:
				if t.hasIdx {
					return 0, false
				}
				if ti+1 < len(w.tokens) {
					nt := w.tokens[ti+1]
					if nt.kind == tokText && len(nt.text) > 0 &&
						(isVarNameChar(nt.text[0]) || nt.text[0] == '(') {
						// "$a" + "bc" would reconstruct as $abc.
						return 0, false
					}
				}
				b.WriteByte('$')
				b.WriteString(t.text)
			default:
				return 0, false
			}
		}
	}
	node, err := compileExprAST(b.String())
	if err != nil {
		return 0, false
	}
	var vars []string
	node, ok := rewriteTemplateVars(node, &vars)
	if !ok {
		return 0, false
	}
	t := &exprTemplate{node: node, vars: vars, refs: make([]varRef, len(vars))}
	if bn, ok := node.(*exprBinaryNode); ok {
		if ls, ok := bn.l.(*exprSlotNode); ok {
			if rs, ok := bn.r.(*exprSlotNode); ok {
				t.fastOp, t.fastL, t.fastR = bn.op, ls.idx, rs.idx
			}
		}
	}
	c.p.tmpls = append(c.p.tmpls, t)
	return int32(len(c.p.tmpls) - 1), true
}

// rewriteTemplateVars replaces every variable node in a compiled
// expression with a slot node, collecting the variable names in slot
// order. It refuses trees containing nodes whose evaluation is not a
// pure function of the slots (command substitution, quoted words):
// those must not run twice when the evaluator bails to the classic
// path.
func rewriteTemplateVars(n exprNode, vars *[]string) (exprNode, bool) {
	switch t := n.(type) {
	case *exprLit:
		return t, true
	case *exprVarNode:
		if t.tok.hasIdx {
			return nil, false
		}
		*vars = append(*vars, t.tok.text)
		return &exprSlotNode{idx: len(*vars) - 1}, true
	case *exprUnaryNode:
		x, ok := rewriteTemplateVars(t.x, vars)
		if !ok {
			return nil, false
		}
		return &exprUnaryNode{op: t.op, x: x}, true
	case *exprBinaryNode:
		l, ok := rewriteTemplateVars(t.l, vars)
		if !ok {
			return nil, false
		}
		r, ok := rewriteTemplateVars(t.r, vars)
		if !ok {
			return nil, false
		}
		return &exprBinaryNode{op: t.op, l: l, r: r}, true
	case *exprAndOrNode:
		l, ok := rewriteTemplateVars(t.l, vars)
		if !ok {
			return nil, false
		}
		r, ok := rewriteTemplateVars(t.r, vars)
		if !ok {
			return nil, false
		}
		return &exprAndOrNode{isAnd: t.isAnd, l: l, r: r}, true
	case *exprTernaryNode:
		cond, ok := rewriteTemplateVars(t.cond, vars)
		if !ok {
			return nil, false
		}
		thenN, ok := rewriteTemplateVars(t.thenN, vars)
		if !ok {
			return nil, false
		}
		elseN, ok := rewriteTemplateVars(t.elseN, vars)
		if !ok {
			return nil, false
		}
		return &exprTernaryNode{cond: cond, thenN: thenN, elseN: elseN}, true
	case *exprFuncNode:
		args := make([]exprNode, len(t.args))
		for i, a := range t.args {
			ra, ok := rewriteTemplateVars(a, vars)
			if !ok {
				return nil, false
			}
			args[i] = ra
		}
		return &exprFuncNode{name: t.name, args: args}, true
	}
	return nil, false
}

// exprSlotNode reads a pre-fetched template operand. Slots are filled
// before evaluation begins — mirroring the classic command, which
// substitutes every word before parsing — so the node ignores the
// skip depth: the value exists even in a short-circuited operand.
type exprSlotNode struct{ idx int }

func (n *exprSlotNode) eval(ev *exprEvaluator) (exprVal, error) {
	return ev.slots[n.idx], nil
}
