package tcl

import (
	"strconv"
	"strings"
	"time"

	"wafe/internal/obs"
)

// This file is the interpreter side of the Tcl profiler (profileOn /
// profileOff / profileDump): activation-record bookkeeping that splits
// every command invocation and proc call into self time (the site
// itself) and cumulative time (children included), attributed to
// "<cmd>@<proc>:<line>" sites via the byte positions the compiled
// Script retains, and to folded proc stacks for flamegraph output.
//
// The profiler is a measurement mode, not a hot path: with no profiler
// attached the only cost is one pointer comparison per evaluated
// command (the same discipline as the obs metric pointers).

// SetProfiler attaches a profiler (non-nil while a profiling window is
// open) or detaches it with nil, which also drops the activation
// bookkeeping.
func (in *Interp) SetProfiler(p *obs.Profiler) {
	in.prof = p
	if p == nil {
		in.profCmdChild = nil
		in.profProcChild = nil
		in.profProcStack = nil
		in.profLines = nil
	}
}

// Profiler returns the attached profiler, or nil.
func (in *Interp) Profiler() *obs.Profiler { return in.prof }

// SetTrace attaches (or, with nil, detaches) the span tracer the
// top-level eval and proc-call sites record into.
func (in *Interp) SetTrace(t *obs.Trace) { in.trace = t }

// profInvoke is invoke wrapped in the profiler's activation record:
// it measures the command's wall time, subtracts the time of commands
// nested inside it (loop bodies, proc bodies, command substitutions
// evaluated during the call) and charges the remainder as self time to
// the command's site.
func (in *Interp) profInvoke(s *Script, cmd *parsedCommand, argv []string) (string, error) {
	prof := in.prof
	in.profCmdChild = append(in.profCmdChild, 0)
	start := time.Now()
	res, err := in.invoke(argv)
	dur := time.Since(start)
	// The stacks may have been cleared under us when the invoked
	// command was profileOff itself (SetProfiler(nil) drops them);
	// every pop is therefore guarded.
	var child time.Duration
	if n := len(in.profCmdChild) - 1; n >= 0 {
		child = time.Duration(in.profCmdChild[n])
		in.profCmdChild = in.profCmdChild[:n]
		if n > 0 {
			in.profCmdChild[n-1] += int64(dur)
		}
	}
	self := dur - child
	if self < 0 {
		self = 0
	}
	proc := "<top>"
	if f := in.currentFrame(); f.proc != nil {
		proc = f.proc.Name
	}
	if prof != nil {
		site := argv[0] + "@" + proc + ":" + strconv.Itoa(in.profLine(s, cmd.words[0].pos))
		prof.AddCommand(site, self, dur)
	}
	return res, err
}

// profLine maps a byte offset in s.Source to its 1-based line, caching
// a newline index per Script so hot loops do not rescan the source on
// every iteration. Lines are relative to the evaluated script's own
// source (a proc body counts from the body's first line).
func (in *Interp) profLine(s *Script, off int) int {
	if in.profLines == nil {
		in.profLines = make(map[*Script][]int)
	}
	idx, ok := in.profLines[s]
	if !ok {
		for i := 0; i < len(s.Source); i++ {
			if s.Source[i] == '\n' {
				idx = append(idx, i)
			}
		}
		in.profLines[s] = idx
	}
	// Count newlines before off: binary search the index.
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if idx[mid] < off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// profEnterProc opens a proc activation record and returns the closer
// that charges the call to the per-proc and folded-stack tables.
func (in *Interp) profEnterProc(name string) func() {
	prof := in.prof
	recursive := false
	for _, n := range in.profProcStack {
		if n == name {
			recursive = true
			break
		}
	}
	in.profProcStack = append(in.profProcStack, name)
	in.profProcChild = append(in.profProcChild, 0)
	start := time.Now()
	return func() {
		dur := time.Since(start)
		var child time.Duration
		if n := len(in.profProcChild) - 1; n >= 0 {
			child = time.Duration(in.profProcChild[n])
			in.profProcChild = in.profProcChild[:n]
			if n > 0 {
				in.profProcChild[n-1] += int64(dur)
			}
		}
		stack := "<top>;" + name
		if n := len(in.profProcStack); n > 0 {
			stack = "<top>;" + strings.Join(in.profProcStack, ";")
			in.profProcStack = in.profProcStack[:n-1]
		}
		self := dur - child
		if self < 0 {
			self = 0
		}
		if prof != nil {
			prof.AddProc(name, stack, self, dur, recursive)
		}
	}
}

// profToplevel closes the accounting of one profiled top-level eval.
func (in *Interp) profToplevel(prof *obs.Profiler, dur time.Duration) {
	var child time.Duration
	if n := len(in.profCmdChild) - 1; n >= 0 {
		child = time.Duration(in.profCmdChild[n])
		in.profCmdChild = in.profCmdChild[:n]
	}
	self := dur - child
	if self < 0 {
		self = 0
	}
	if prof != nil {
		prof.AddToplevel(self, dur)
	}
}

// spanName condenses script source into a span label: first line,
// capped length.
func spanName(src string) string {
	if i := strings.IndexByte(src, '\n'); i >= 0 {
		src = src[:i]
	}
	const max = 64
	if len(src) > max {
		src = src[:max]
	}
	return src
}
