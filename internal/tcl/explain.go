package tcl

import (
	"strconv"
	"strings"
)

// This file explains the bytecode compiler's specialization decisions
// for tooling (`wafecheck -why`). For every command of a script it
// reports whether the VM compiles it to a dedicated opcode or sends it
// through generic opInvoke dispatch, and — for generic sites — which
// rule of trySpecialize forced the fallback.
//
// The specialized/generic label is read off the actually-compiled
// Program (the same compileProgram the VM executes), so it cannot
// drift from the engine. The textual reason comes from explainGeneric,
// a mirror of trySpecialize's reject conditions; the Mismatch field
// records the (never expected) case where the mirror disagrees with
// the compiler, which the cross-check tests gate on.

// CmdExplanation is the specialization report for one command.
type CmdExplanation struct {
	// Pos is the byte offset of the command's first word in the
	// script's Source.
	Pos int
	// Name is the literal command name, "" when the name is dynamic.
	Name string
	// Op is the dispatch opcode the compiler emitted: one of "set",
	// "incr", "expr", "exprTmpl", "while", "for" (specialized) or
	// "invoke" (generic).
	Op string
	// Specialized reports whether the command bypasses the command
	// table via a dedicated opcode.
	Specialized bool
	// Reason explains, for generic sites, which rule forced the
	// fallback; "" for specialized sites.
	Reason string
	// Mismatch reports that the syntactic mirror predicted a different
	// label than the compiler produced (a tooling bug, gated in tests).
	Mismatch bool
}

// dispatchOpName maps a dispatch opcode to its mnemonic.
func dispatchOpName(o op) string {
	switch o {
	case opSet:
		return "set"
	case opIncr:
		return "incr"
	case opExpr:
		return "expr"
	case opExprTmpl:
		return "exprTmpl"
	case opWhile:
		return "while"
	case opFor:
		return "for"
	default:
		return "invoke"
	}
}

// ExplainScript compiles s with a scratch interpreter (whose builtins
// are untouched, so specialization is enabled exactly as in a fresh
// session) and explains every command. Commands inside nested scripts
// are not traversed; callers recurse structurally (the analysis
// package does, with position mapping).
func ExplainScript(s *Script) []CmdExplanation {
	if s == nil {
		return nil
	}
	in := New()
	p := in.compileProgram(s)
	out := make([]CmdExplanation, 0, len(p.cmds))
	for i := range p.cmds {
		pc := &p.cmds[i]
		cmd := pc.src
		if pc.end <= pc.start || len(cmd.words) == 0 {
			continue
		}
		last := p.insns[pc.end-1]
		opName := dispatchOpName(last.op)
		name, _ := wordLiteral(cmd.words[0])
		e := CmdExplanation{
			Pos:         cmd.words[0].pos,
			Name:        name,
			Op:          opName,
			Specialized: last.op != opInvoke,
		}
		predictedGeneric, reason := explainGeneric(cmd)
		if e.Specialized {
			e.Mismatch = predictedGeneric
		} else {
			e.Reason = reason
			e.Mismatch = !predictedGeneric
			if e.Mismatch {
				e.Reason = "mirror predicted a specialized opcode but the compiler emitted generic dispatch"
			}
		}
		out = append(out, e)
	}
	return out
}

// explainGeneric mirrors trySpecialize: it reports whether the command
// stays on generic dispatch and, if so, why. The conditions below must
// reject exactly when trySpecialize rejects; the Mismatch cross-check
// in the tests keeps the two in sync.
func explainGeneric(cmd *parsedCommand) (generic bool, reason string) {
	words := cmd.words
	name, nameLit := wordLiteral(words[0])
	if !nameLit {
		return true, "command name is not a single literal word; resolved through the command table at runtime"
	}
	switch name {
	case "set":
		if len(words) != 3 {
			return true, "specialized form is `set NAME value`; other arities keep the classic path"
		}
		vn, ok := wordLiteral(words[1])
		if !ok {
			return true, "variable name is not a literal word"
		}
		if _, _, isArr := splitArrayRef(vn); isArr {
			return true, "array references keep the classic set path and its error surface"
		}
		return false, ""
	case "incr":
		if len(words) != 2 && len(words) != 3 {
			return true, "specialized form is `incr NAME ?delta?`"
		}
		vn, ok := wordLiteral(words[1])
		if !ok {
			return true, "variable name is not a literal word"
		}
		if _, _, isArr := splitArrayRef(vn); isArr {
			return true, "array references keep the classic incr path"
		}
		if len(words) == 3 {
			lit, ok := wordLiteral(words[2])
			if !ok {
				return true, "delta is not a literal word"
			}
			d, err := strconv.ParseInt(strings.TrimSpace(lit), 0, 64)
			if err != nil || d != int64(int32(d)) {
				return true, "delta " + strconv.Quote(lit) + " is not a literal 32-bit integer; the classic path produces the error text"
			}
		}
		return false, ""
	case "expr":
		if len(words) == 2 {
			if src, ok := wordLiteral(words[1]); ok {
				if _, err := compileExprAST(src); err != nil {
					return true, "expression does not compile statically (" + err.Error() + "); the classic path interleaves substitution and errors in source order"
				}
				return false, ""
			}
		}
		if reason := explainExprTemplate(words[1:]); reason != "" {
			return true, reason
		}
		return false, ""
	case "while":
		if len(words) != 3 {
			return true, "specialized form is `while {cond} {body}`"
		}
		condSrc, ok1 := wordLiteral(words[1])
		_, ok2 := wordLiteral(words[2])
		if !ok1 {
			return true, "condition is not a literal word (brace it so the loop re-tests it each iteration and the VM can pre-compile it)"
		}
		if !ok2 {
			return true, "body is not a literal word"
		}
		if _, err := compileExprAST(condSrc); err != nil {
			return true, "condition does not compile as a typed expression (" + err.Error() + ")"
		}
		return false, ""
	case "for":
		if len(words) != 5 {
			return true, "specialized form is `for {init} {cond} {next} {body}`"
		}
		for i := 1; i < 5; i++ {
			if _, ok := wordLiteral(words[i]); !ok {
				return true, "argument " + strconv.Itoa(i) + " is not a literal word"
			}
		}
		condSrc, _ := wordLiteral(words[2])
		if _, err := compileExprAST(condSrc); err != nil {
			return true, "condition does not compile as a typed expression (" + err.Error() + ")"
		}
		return false, ""
	}
	return true, "no specialized opcode for " + strconv.Quote(name) + "; dispatched through the (inline-cached) command table"
}

// explainExprTemplate mirrors buildExprTemplate's reject conditions for
// a multi-word expr; "" means the template compiles.
func explainExprTemplate(args []word) string {
	var b strings.Builder
	for wi, w := range args {
		if w.form != 0 {
			return "operand word " + strconv.Itoa(wi+1) + " is braced or quoted; reconstruction could change the expression's shape"
		}
		if w.expand {
			return "operand word " + strconv.Itoa(wi+1) + " uses {*} expansion"
		}
		if len(w.tokens) == 0 {
			return "operand word " + strconv.Itoa(wi+1) + " is empty"
		}
		if wi > 0 {
			b.WriteByte(' ')
		}
		for ti, t := range w.tokens {
			switch t.kind {
			case tokText:
				if !exprSafeText(t.text) {
					return "literal " + strconv.Quote(t.text) + " contains characters that are unsafe to splice into reconstructed expression source"
				}
				b.WriteString(t.text)
			case tokVar:
				if t.hasIdx {
					return "array reference $" + t.text + "(...) cannot be a template slot"
				}
				if ti+1 < len(w.tokens) {
					nt := w.tokens[ti+1]
					if nt.kind == tokText && len(nt.text) > 0 &&
						(isVarNameChar(nt.text[0]) || nt.text[0] == '(') {
						return "$" + t.text + " abuts more name characters; reconstruction would read a different variable"
					}
				}
				b.WriteByte('$')
				b.WriteString(t.text)
			default:
				return "command substitution in an operand must not run twice (once per template evaluation and once on the bail path)"
			}
		}
	}
	src := b.String()
	node, err := compileExprAST(src)
	if err != nil {
		return "reconstructed expression does not compile statically (" + err.Error() + ")"
	}
	var vars []string
	if _, ok := rewriteTemplateVars(node, &vars); !ok {
		return "expression contains nodes that are not pure functions of its variable slots"
	}
	return ""
}

// DispatchCounts tallies VM dispatches by opcode kind. One field per
// dispatch opcode; Invoke is the generic path, everything else a
// specialized one. Counting happens on the owning event-loop goroutine
// only (like every other interpreter touch), so plain int64s suffice.
type DispatchCounts struct {
	Invoke, Set, Incr, Expr, ExprTmpl, While, For int64
}

// SpecializedTotal sums the dispatches that bypassed the command table.
func (d *DispatchCounts) SpecializedTotal() int64 {
	return d.Set + d.Incr + d.Expr + d.ExprTmpl + d.While + d.For
}

// CountDispatch arms per-opcode dispatch counting and returns the
// live counter struct (idempotent: a second call returns the same).
func (in *Interp) CountDispatch() *DispatchCounts {
	if in.opCounts == nil {
		in.opCounts = &DispatchCounts{}
	}
	return in.opCounts
}

// NonCanonicalNumber reports whether s parses as a number under the
// permissive parsers (base-0 integer after space trimming, or a float)
// but is NOT a canonical spelling internValue upgrades to a typed int.
// Such values keep string semantics in the VM: every numeric use
// re-parses the text, and expr templates bail to the classic path.
// The second result is the canonical respelling when one exists.
func NonCanonicalNumber(s string) (canonical string, ok bool) {
	if internValue(s).kind == vInt {
		return "", false // already canonical
	}
	if v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64); err == nil {
		return strconv.FormatInt(v, 10), true
	}
	return "", false
}
