package tcl

import (
	"math"
	"strconv"
	"strings"
)

// This file is the dual string/numeric value representation of
// execution engine v2. Classic Tcl shimmers every number through its
// string form; a Value keeps the machine representation (int64 or
// float64) alongside an optional cached string, so numeric loops
// (incr counters, expr operands, for/while tests) stay in machine
// arithmetic and only pay for formatting when a string is actually
// observed.
//
// The zero Value is the empty string: vString must be the zero kind so
// that a zero-initialized variable reads back as "" exactly like the
// string-only representation did.

type valKind int

const (
	vString valKind = iota
	vInt
	vFloat
)

// Value is a Tcl value: a string, or a number that remembers (or
// lazily produces) its string form. Values are immutable by
// convention — every operation returns a fresh Value.
type Value struct {
	kind valKind
	i    int64
	f    float64
	// s is the string form: authoritative for vString, a cache for
	// numeric kinds ("" means "format on demand"). Invariant: a numeric
	// Value only ever caches a canonical spelling — one that every
	// numeric parser in the interpreter reads back as the same machine
	// value (internValue for ints, normFloat for floats enforce this) —
	// so consumers may trust the machine field without consulting s.
	s string
}

// exprVal predates Value; the expression evaluator was written against
// it and the alias keeps that code unchanged.
type exprVal = Value

func intVal(i int64) Value     { return Value{kind: vInt, i: i} }
func floatVal(f float64) Value { return Value{kind: vFloat, f: f} }
func strVal(s string) Value    { return Value{kind: vString, s: s} }

// internValue wraps a string as a Value, upgrading canonical decimal
// integers — exactly the spellings FormatInt produces: "0" or
// [-]?[1-9][0-9]* within int64 range — to a typed int that keeps the
// original text as its cache. Only canonical spellings qualify: for
// those, the expression lexer, the base-0 integer parser and plain
// decimal parsing all yield the same number, so a consumer reading the
// machine value sees exactly what re-parsing the string would have
// produced. (A value like "09" or " 7" must stay a string: the parsers
// disagree about it, and which one runs depends on the consumer.)
func internValue(s string) Value {
	if len(s) == 0 || len(s) > 20 {
		return strVal(s)
	}
	i := 0
	if s[0] == '-' {
		if len(s) == 1 {
			return strVal(s)
		}
		i = 1
	}
	if s[i] == '0' {
		// A lone "0" is canonical; any longer 0-prefixed spelling is
		// octal or float territory.
		if i == 0 && len(s) == 1 {
			return Value{kind: vInt, s: s}
		}
		return strVal(s)
	}
	for j := i; j < len(s); j++ {
		if s[j] < '0' || s[j] > '9' {
			return strVal(s)
		}
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return strVal(s)
	}
	return Value{kind: vInt, i: v, s: s}
}

func (v Value) String() string {
	switch v.kind {
	case vInt:
		if v.s != "" {
			return v.s
		}
		return strconv.FormatInt(v.i, 10)
	case vFloat:
		if v.s != "" {
			return v.s
		}
		return formatFloat(v.f)
	default:
		return v.s
	}
}

// formatFloat renders like Tcl: always with a decimal point or exponent
// so the value round-trips as a float.
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "Inf"
	}
	if math.IsInf(f, -1) {
		return "-Inf"
	}
	s := strconv.FormatFloat(f, 'g', 12, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func (v Value) isNumeric() bool { return v.kind != vString }

func (v Value) asFloat() float64 {
	switch v.kind {
	case vInt:
		return float64(v.i)
	case vFloat:
		return v.f
	}
	return 0
}

func (v Value) asBool() (bool, error) {
	switch v.kind {
	case vInt:
		return v.i != 0, nil
	case vFloat:
		// NaN is not a boolean; the string engine reached the same
		// conclusion the long way round (ParseBool cannot parse the
		// "NaN.0" rendering).
		if math.IsNaN(v.f) {
			return false, NewError("expected boolean value but got %q", v.String())
		}
		return v.f != 0, nil
	default:
		return ParseBool(v.s)
	}
}

// errIntTooLarge reports an integer-syntax literal whose value does not
// fit in 64 bits. Classic Tcl raises this; silently falling through to
// the float parser would round the value (the seed's bug).
func errIntTooLarge() *Error {
	return NewError("integer value too large to represent")
}

// isRangeErr reports whether a strconv failure was a pure overflow: the
// syntax was a valid integer, only the magnitude did not fit.
func isRangeErr(err error) bool {
	ne, ok := err.(*strconv.NumError)
	return ok && ne.Err == strconv.ErrRange
}

// coerce turns a value into its numeric form for arithmetic. Numeric
// kinds come back with the cached string stripped (arithmetic results
// must format canonically, not echo the operand's spelling); strings
// parse as integer first, then float. A string with integer syntax
// whose value overflows int64 is an error — it must not silently round
// through the float parser.
func coerce(v Value) (Value, error) {
	// Tiny so it inlines: already-numeric values pay no call.
	if v.kind == vInt {
		if v.s == "" {
			return v, nil
		}
		return Value{kind: vInt, i: v.i}, nil
	}
	if v.kind == vFloat {
		if v.s == "" {
			return v, nil
		}
		return Value{kind: vFloat, f: v.f}, nil
	}
	return coerceString(v)
}

func coerceString(v Value) (Value, error) {
	t := strings.TrimSpace(v.s)
	if t == "" {
		return v, nil
	}
	if iv, err := strconv.ParseInt(t, 0, 64); err == nil {
		return intVal(iv), nil
	} else if isRangeErr(err) {
		return Value{}, errIntTooLarge()
	}
	if fv, err := strconv.ParseFloat(t, 64); err == nil {
		return floatVal(fv), nil
	}
	return v, nil
}

// coerceFloat is coerce followed by asFloat (non-numeric strings map
// to 0, as asFloat always has).
func coerceFloat(v Value) (float64, error) {
	c, err := coerce(v)
	if err != nil {
		return 0, err
	}
	return c.asFloat(), nil
}

// normFloat prepares a float for storage in a variable. The string
// engine stored formatFloat(f) and later reads re-parsed it, so a
// stored float carries only formatFloat precision; normalizing on
// store keeps the typed engine bit-identical to that round-trip. The
// formatted string is kept as the cache. A float whose rendering does
// not parse back (NaN renders as "NaN.0") degrades to the plain
// string, again matching what a read-back would have produced.
func normFloat(v Value) Value {
	// Tiny so it inlines: the common (int or already-normalized)
	// argument pays no call.
	if v.kind != vFloat || v.s != "" {
		return v
	}
	return normFloatSlow(v)
}

func normFloatSlow(v Value) Value {
	s := formatFloat(v.f)
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return strVal(s)
	}
	return Value{kind: vFloat, f: f, s: s}
}

// pureNumberValue reports whether s is exactly one numeric literal as
// the expression lexer would scan it (optional surrounding space, one
// optional sign). Substituting such a value into re-parsed expression
// source yields the same operand as using the value directly, which is
// what lets a multi-word expr compile to a fixed template: classic
// expr re-joins and re-parses `expr $n % $d` on every evaluation, so
// the template is only equivalent while every substituted value is a
// pure number.
func pureNumberValue(s string) (Value, bool) {
	t := strings.TrimSpace(s)
	if t == "" {
		return Value{}, false
	}
	i := 0
	neg := false
	if t[0] == '-' || t[0] == '+' {
		neg = t[0] == '-'
		i = 1
		if i == len(t) {
			return Value{}, false
		}
	}
	c := t[i]
	if !(c >= '0' && c <= '9' || c == '.') {
		return Value{}, false
	}
	v, np, err := scanExprNumber(t, i)
	if err != nil || np != len(t) {
		return Value{}, false
	}
	if neg {
		if v.kind == vInt {
			v.i = -v.i
		} else {
			v.f = -v.f
		}
	}
	return v, true
}
