package tcl

import (
	"strings"
	"testing"

	"wafe/internal/obs"
)

// TestProfilerHotLoopAttribution is the acceptance check for the
// profiler: a synthetic hot loop inside one proc must get at least 95%
// of the profiled time attributed to that proc (cumulative) and the
// command table must carry sites with the proc's own line numbers.
func TestProfilerHotLoopAttribution(t *testing.T) {
	in := New()
	evalOK(t, in, `proc cold {} { set a 1 }
proc hot {} {
	set s 0
	for {set i 0} {$i < 40000} {incr i} {
		set s [expr {$s + $i}]
	}
	return $s
}`)
	p := obs.NewProfiler()
	p.Start()
	in.SetProfiler(p)
	evalOK(t, in, "cold")
	got := evalOK(t, in, "hot")
	p.Stop()
	in.SetProfiler(nil)
	if got != "799980000" {
		t.Fatalf("hot = %q", got)
	}

	total := p.TotalNs()
	if total <= 0 {
		t.Fatal("no profiled time recorded")
	}
	hot := p.ProcStat("hot")
	if hot.Count != 1 {
		t.Errorf("hot count = %d", hot.Count)
	}
	if frac := float64(hot.CumNs) / float64(total); frac < 0.95 {
		t.Errorf("hot proc gets %.1f%% of total, want >= 95%% (hot %dns of %dns)",
			frac*100, hot.CumNs, total)
	}
	// Proc self time excludes child procs only (proc-level flamegraph
	// frames); hot calls no procs, so self == cum here.
	if hot.SelfNs > hot.CumNs {
		t.Errorf("hot self %dns > cum %dns", hot.SelfNs, hot.CumNs)
	}

	// The command table attributes each invocation to its proc and the
	// line inside the evaluated script: "for@hot:3" is the loop command
	// (line 3 of hot's body); the loop body is its own one-line script,
	// so its set/expr sites are "...@hot:1".
	var sb strings.Builder
	if err := p.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	doc := sb.String()
	for _, site := range []string{`for@hot:3`, `set@hot:1`, `expr@hot:1`, `set@cold:1`} {
		if !strings.Contains(doc, site) {
			t.Errorf("profile misses site %s:\n%.400s", site, doc)
		}
	}
	// The for command's cumulative time dominates: nearly the whole
	// proc runs inside it.
	forCum := siteCum(t, p, "for@hot:3")
	if frac := float64(forCum) / float64(total); frac < 0.90 {
		t.Errorf("for loop gets %.1f%% of total, want >= 90%%", frac*100)
	}
	// Folded stacks carry the rooted proc path.
	if folded := p.Folded(); !strings.Contains(folded, "<top>;hot ") {
		t.Errorf("folded = %q", folded)
	}
}

// siteCum digs one command site's cumulative nanoseconds out of the
// JSON dump (the profiler has no public per-site accessor).
func siteCum(t *testing.T, p *obs.Profiler, site string) int64 {
	t.Helper()
	var sb strings.Builder
	if err := p.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	doc := sb.String()
	i := strings.Index(doc, `"`+site+`"`)
	if i < 0 {
		t.Fatalf("site %s missing", site)
	}
	j := strings.Index(doc[i:], `"cum_ns":`)
	if j < 0 {
		t.Fatalf("site %s has no cum_ns", site)
	}
	rest := doc[i+j+len(`"cum_ns":`):]
	end := strings.IndexAny(rest, ",}")
	var n int64
	for _, c := range rest[:end] {
		if c < '0' || c > '9' {
			t.Fatalf("bad cum_ns %q", rest[:end])
		}
		n = n*10 + int64(c-'0')
	}
	return n
}

// TestProfilerOffInsideProfiledCommand: profileOff runs as a command
// inside a pending profiled activation (the interpreter is mid-
// profInvoke when SetProfiler(nil) clears the stacks); the guarded
// pops must keep the interpreter alive and later evals unprofiled.
func TestProfilerOffInsideProfiledCommand(t *testing.T) {
	in := New()
	p := obs.NewProfiler()
	detach := func(*Interp, []string) (string, error) {
		p.Stop()
		in.SetProfiler(nil)
		return "", nil
	}
	in.RegisterCommand("detachprof", detach)
	p.Start()
	in.SetProfiler(p)
	evalOK(t, in, "proc q {} { detachprof; set x 1 }")
	evalOK(t, in, "q")
	if in.Profiler() != nil {
		t.Fatal("profiler still attached")
	}
	// The interpreter keeps working, unprofiled.
	wantEval(t, in, "set y 2", "2")
	if st := p.ProcStat("q"); st.Count != 0 {
		// The proc closer ran after detach with the captured profiler;
		// both recording or dropping are acceptable — what matters is
		// no panic and no negative accounting.
		if st.SelfNs < 0 || st.CumNs < 0 {
			t.Errorf("negative accounting: %+v", st)
		}
	}
}

// TestProfilerSpanOnEval: with a tracer attached, a top-level eval
// opens an eval span and proc calls nest under it.
func TestProfilerSpanOnEval(t *testing.T) {
	in := New()
	var tr obs.Trace
	tr.SetEnabled(true)
	in.SetTrace(&tr)
	evalOK(t, in, "proc f {} { return 1 }")
	evalOK(t, in, "f")
	in.SetTrace(nil)
	spans := tr.Spans()
	var evalSpan, procSpan *obs.Span
	for i := range spans {
		sp := &spans[i]
		switch {
		case sp.Kind == "eval" && sp.Name == "f":
			evalSpan = sp
		case sp.Kind == "proc" && sp.Name == "f":
			procSpan = sp
		}
	}
	if evalSpan == nil || procSpan == nil {
		t.Fatalf("spans = %+v", spans)
	}
	if procSpan.Parent != evalSpan.ID {
		t.Errorf("proc span parent = %d, want eval id %d", procSpan.Parent, evalSpan.ID)
	}
}
