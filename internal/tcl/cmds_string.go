package tcl

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

func registerStringCommands(in *Interp) {
	in.RegisterCommand("string", cmdString)
	in.RegisterCommand("format", cmdFormat)
	in.RegisterCommand("scan", cmdScan)
	in.RegisterCommand("regexp", cmdRegexp)
	in.RegisterCommand("regsub", cmdRegsub)
	in.RegisterCommand("split", cmdSplit)
	in.RegisterCommand("join", cmdJoin)
}

// GlobMatch implements Tcl's glob-style matching: * ? [...] \x.
func GlobMatch(pattern, s string) bool {
	return globMatch(pattern, s)
}

func globMatch(p, s string) bool {
	pi, si := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		if pi < len(p) {
			switch p[pi] {
			case '*':
				starP, starS = pi, si
				pi++
				continue
			case '?':
				pi++
				si++
				continue
			case '[':
				end := pi + 1
				for end < len(p) && p[end] != ']' {
					if p[end] == '\\' {
						end++
					}
					end++
				}
				if end < len(p) && matchCharClass(p[pi+1:end], s[si]) {
					pi = end + 1
					si++
					continue
				}
			case '\\':
				if pi+1 < len(p) && p[pi+1] == s[si] {
					pi += 2
					si++
					continue
				}
			default:
				if p[pi] == s[si] {
					pi++
					si++
					continue
				}
			}
		}
		if starP >= 0 {
			starS++
			si = starS
			pi = starP + 1
			continue
		}
		return false
	}
	for pi < len(p) && p[pi] == '*' {
		pi++
	}
	return pi == len(p)
}

func matchCharClass(class string, c byte) bool {
	i := 0
	neg := false
	if i < len(class) && (class[i] == '^' || class[i] == '!') {
		neg = true
		i++
	}
	matched := false
	for i < len(class) {
		lo := class[i]
		if lo == '\\' && i+1 < len(class) {
			i++
			lo = class[i]
		}
		hi := lo
		if i+2 < len(class) && class[i+1] == '-' {
			hi = class[i+2]
			i += 2
		}
		if c >= lo && c <= hi {
			matched = true
		}
		i++
	}
	return matched != neg
}

func cmdString(in *Interp, argv []string) (string, error) {
	if len(argv) < 3 {
		return "", arityError("string", "option arg ?arg ...?")
	}
	op := argv[1]
	switch op {
	case "length":
		return strconv.Itoa(len(argv[2])), nil
	case "tolower":
		return strings.ToLower(argv[2]), nil
	case "toupper":
		return strings.ToUpper(argv[2]), nil
	case "trim", "trimleft", "trimright":
		cutset := " \t\n\r"
		if len(argv) == 4 {
			cutset = argv[3]
		}
		switch op {
		case "trim":
			return strings.Trim(argv[2], cutset), nil
		case "trimleft":
			return strings.TrimLeft(argv[2], cutset), nil
		default:
			return strings.TrimRight(argv[2], cutset), nil
		}
	case "index":
		if len(argv) != 4 {
			return "", arityError("string index", "string charIndex")
		}
		idx, err := parseIndex(argv[3], len(argv[2]))
		if err != nil {
			return "", err
		}
		if idx < 0 || idx >= len(argv[2]) {
			return "", nil
		}
		return string(argv[2][idx]), nil
	case "range":
		if len(argv) != 5 {
			return "", arityError("string range", "string first last")
		}
		s := argv[2]
		first, err := parseIndex(argv[3], len(s))
		if err != nil {
			return "", err
		}
		last, err := parseIndex(argv[4], len(s))
		if err != nil {
			return "", err
		}
		if first < 0 {
			first = 0
		}
		if last >= len(s) {
			last = len(s) - 1
		}
		if first > last {
			return "", nil
		}
		return s[first : last+1], nil
	case "compare":
		if len(argv) != 4 {
			return "", arityError("string compare", "string1 string2")
		}
		return strconv.Itoa(strings.Compare(argv[2], argv[3])), nil
	case "match":
		if len(argv) != 4 {
			return "", arityError("string match", "pattern string")
		}
		if GlobMatch(argv[2], argv[3]) {
			return "1", nil
		}
		return "0", nil
	case "first":
		if len(argv) != 4 {
			return "", arityError("string first", "needle haystack")
		}
		return strconv.Itoa(strings.Index(argv[3], argv[2])), nil
	case "last":
		if len(argv) != 4 {
			return "", arityError("string last", "needle haystack")
		}
		return strconv.Itoa(strings.LastIndex(argv[3], argv[2])), nil
	case "repeat":
		if len(argv) != 4 {
			return "", arityError("string repeat", "string count")
		}
		n, err := strconv.Atoi(argv[3])
		if err != nil || n < 0 {
			return "", NewError("bad repeat count %q", argv[3])
		}
		return strings.Repeat(argv[2], n), nil
	case "reverse":
		b := []byte(argv[2])
		for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
			b[i], b[j] = b[j], b[i]
		}
		return string(b), nil
	}
	return "", NewError("bad string option %q", op)
}

// parseIndex handles numeric indices plus "end" and "end-N".
func parseIndex(s string, length int) (int, error) {
	if s == "end" {
		return length - 1, nil
	}
	if strings.HasPrefix(s, "end-") {
		n, err := strconv.Atoi(s[4:])
		if err != nil {
			return 0, NewError("bad index %q", s)
		}
		return length - 1 - n, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, NewError("bad index %q: must be integer or end?-integer?", s)
	}
	return n, nil
}

// cmdFormat implements a printf-compatible format using Go's fmt after
// translating the Tcl verbs (%d %i %u %s %c %x %X %o %f %e %g %%).
func cmdFormat(in *Interp, argv []string) (string, error) {
	if len(argv) < 2 {
		return "", arityError("format", "formatString ?arg ...?")
	}
	return FormatTcl(argv[1], argv[2:])
}

// FormatTcl renders a Tcl format string against string arguments,
// converting each argument to the type the verb demands.
func FormatTcl(format string, args []string) (string, error) {
	var b strings.Builder
	argi := 0
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			b.WriteByte(c)
			i++
			continue
		}
		i++
		if i >= len(format) {
			return "", NewError("format string ended in middle of field specifier")
		}
		if format[i] == '%' {
			b.WriteByte('%')
			i++
			continue
		}
		spec := "%"
		// flags
		for i < len(format) && strings.ContainsRune("-+ 0#", rune(format[i])) {
			spec += string(format[i])
			i++
		}
		// width (possibly *)
		if i < len(format) && format[i] == '*' {
			if argi >= len(args) {
				return "", NewError("not enough arguments for all format specifiers")
			}
			w, err := strconv.Atoi(args[argi])
			if err != nil {
				return "", NewError("expected integer but got %q", args[argi])
			}
			argi++
			spec += strconv.Itoa(w)
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				spec += string(format[i])
				i++
			}
		}
		// precision
		if i < len(format) && format[i] == '.' {
			spec += "."
			i++
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				spec += string(format[i])
				i++
			}
		}
		// length modifiers are ignored
		for i < len(format) && strings.ContainsRune("hlL", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			return "", NewError("format string ended in middle of field specifier")
		}
		verb := format[i]
		i++
		if argi >= len(args) {
			return "", NewError("not enough arguments for all format specifiers")
		}
		arg := args[argi]
		argi++
		switch verb {
		case 'd', 'i':
			n, err := strconv.ParseInt(strings.TrimSpace(arg), 0, 64)
			if err != nil {
				return "", NewError("expected integer but got %q", arg)
			}
			fmt.Fprintf(&b, spec+"d", n)
		case 'u':
			n, err := strconv.ParseInt(strings.TrimSpace(arg), 0, 64)
			if err != nil {
				return "", NewError("expected integer but got %q", arg)
			}
			fmt.Fprintf(&b, spec+"d", uint64(n))
		case 'x', 'X', 'o':
			n, err := strconv.ParseInt(strings.TrimSpace(arg), 0, 64)
			if err != nil {
				return "", NewError("expected integer but got %q", arg)
			}
			fmt.Fprintf(&b, spec+string(verb), n)
		case 'c':
			n, err := strconv.ParseInt(strings.TrimSpace(arg), 0, 64)
			if err != nil {
				return "", NewError("expected integer but got %q", arg)
			}
			fmt.Fprintf(&b, spec+"c", rune(n))
		case 'f', 'e', 'E', 'g', 'G':
			f, err := strconv.ParseFloat(strings.TrimSpace(arg), 64)
			if err != nil {
				return "", NewError("expected floating-point number but got %q", arg)
			}
			fmt.Fprintf(&b, spec+string(verb), f)
		case 's':
			fmt.Fprintf(&b, spec+"s", arg)
		default:
			return "", NewError("bad field specifier %q", string(verb))
		}
	}
	return b.String(), nil
}

// cmdScan implements a small but useful subset of Tcl scan: %d %f %s %c
// with literal text matching.
func cmdScan(in *Interp, argv []string) (string, error) {
	if len(argv) < 4 {
		return "", arityError("scan", "string format varName ?varName ...?")
	}
	s, format := argv[1], argv[2]
	vars := argv[3:]
	si, vi := 0, 0
	skipSpace := func() {
		for si < len(s) && (s[si] == ' ' || s[si] == '\t' || s[si] == '\n') {
			si++
		}
	}
	count := 0
	i := 0
	for i < len(format) {
		c := format[i]
		if c == ' ' || c == '\t' {
			skipSpace()
			i++
			continue
		}
		if c != '%' {
			if si < len(s) && s[si] == c {
				si++
				i++
				continue
			}
			break
		}
		i++
		if i >= len(format) {
			break
		}
		verb := format[i]
		i++
		if vi >= len(vars) {
			return "", NewError("not enough variables for all conversions")
		}
		switch verb {
		case 'd':
			skipSpace()
			start := si
			if si < len(s) && (s[si] == '-' || s[si] == '+') {
				si++
			}
			for si < len(s) && s[si] >= '0' && s[si] <= '9' {
				si++
			}
			if si == start {
				goto done
			}
			if err := in.SetVar(vars[vi], s[start:si]); err != nil {
				return "", err
			}
		case 'f', 'e', 'g':
			skipSpace()
			start := si
			for si < len(s) && strings.ContainsRune("+-0123456789.eE", rune(s[si])) {
				si++
			}
			if si == start {
				goto done
			}
			f, err := strconv.ParseFloat(s[start:si], 64)
			if err != nil {
				goto done
			}
			if err := in.SetVar(vars[vi], formatFloat(f)); err != nil {
				return "", err
			}
		case 's':
			skipSpace()
			start := si
			for si < len(s) && s[si] != ' ' && s[si] != '\t' && s[si] != '\n' {
				si++
			}
			if si == start {
				goto done
			}
			if err := in.SetVar(vars[vi], s[start:si]); err != nil {
				return "", err
			}
		case 'c':
			if si >= len(s) {
				goto done
			}
			if err := in.SetVar(vars[vi], strconv.Itoa(int(s[si]))); err != nil {
				return "", err
			}
			si++
		default:
			return "", NewError("bad scan conversion %q", string(verb))
		}
		vi++
		count++
	}
done:
	return strconv.Itoa(count), nil
}

var regexpCache = map[string]*regexp.Regexp{}

func compileRegexp(pattern string, nocase bool) (*regexp.Regexp, error) {
	key := pattern
	if nocase {
		key = "(?i)" + pattern
	}
	if re, ok := regexpCache[key]; ok {
		return re, nil
	}
	re, err := regexp.Compile(key)
	if err != nil {
		return nil, NewError("couldn't compile regular expression pattern: %v", err)
	}
	if len(regexpCache) > 256 {
		regexpCache = map[string]*regexp.Regexp{}
	}
	regexpCache[key] = re
	return re, nil
}

func regexpMatch(pattern, s string) (bool, error) {
	re, err := compileRegexp(pattern, false)
	if err != nil {
		return false, err
	}
	return re.MatchString(s), nil
}

func cmdRegexp(in *Interp, argv []string) (string, error) {
	args := argv[1:]
	nocase := false
	indices := false
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "-nocase":
			nocase = true
		case "-indices":
			indices = true
		case "--":
			args = args[1:]
			goto parsed
		default:
			return "", NewError("bad regexp option %q", args[0])
		}
		args = args[1:]
	}
parsed:
	if len(args) < 2 {
		return "", arityError("regexp", "?switches? exp string ?matchVar? ?subMatchVar ...?")
	}
	re, err := compileRegexp(args[0], nocase)
	if err != nil {
		return "", err
	}
	s := args[1]
	locs := re.FindStringSubmatchIndex(s)
	if locs == nil {
		return "0", nil
	}
	for i, varName := range args[2:] {
		val := ""
		if 2*i+1 < len(locs) && locs[2*i] >= 0 {
			if indices {
				val = fmt.Sprintf("%d %d", locs[2*i], locs[2*i+1]-1)
			} else {
				val = s[locs[2*i]:locs[2*i+1]]
			}
		}
		if err := in.SetVar(varName, val); err != nil {
			return "", err
		}
	}
	return "1", nil
}

func cmdRegsub(in *Interp, argv []string) (string, error) {
	args := argv[1:]
	nocase := false
	all := false
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "-nocase":
			nocase = true
		case "-all":
			all = true
		case "--":
			args = args[1:]
			goto parsed
		default:
			return "", NewError("bad regsub option %q", args[0])
		}
		args = args[1:]
	}
parsed:
	if len(args) != 4 {
		return "", arityError("regsub", "?switches? exp string subSpec varName")
	}
	re, err := compileRegexp(args[0], nocase)
	if err != nil {
		return "", err
	}
	s, subSpec, varName := args[1], args[2], args[3]
	// Translate Tcl subSpec (& and \N) to Go ($0, $N).
	var repl strings.Builder
	for i := 0; i < len(subSpec); i++ {
		switch subSpec[i] {
		case '&':
			repl.WriteString("${0}")
		case '\\':
			if i+1 < len(subSpec) && subSpec[i+1] >= '0' && subSpec[i+1] <= '9' {
				repl.WriteString("${" + string(subSpec[i+1]) + "}")
				i++
			} else if i+1 < len(subSpec) {
				repl.WriteByte(subSpec[i+1])
				i++
			}
		case '$':
			repl.WriteString("$$")
		default:
			repl.WriteByte(subSpec[i])
		}
	}
	count := 0
	var out string
	if all {
		out = re.ReplaceAllStringFunc(s, func(m string) string {
			count++
			idx := re.FindStringSubmatchIndex(m)
			return string(re.ExpandString(nil, repl.String(), m, idx))
		})
	} else {
		loc := re.FindStringSubmatchIndex(s)
		if loc == nil {
			out = s
		} else {
			count = 1
			expanded := re.ExpandString(nil, repl.String(), s, loc)
			out = s[:loc[0]] + string(expanded) + s[loc[1]:]
		}
	}
	if err := in.SetVar(varName, out); err != nil {
		return "", err
	}
	return strconv.Itoa(count), nil
}

func cmdSplit(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 && len(argv) != 3 {
		return "", arityError("split", "string ?splitChars?")
	}
	s := argv[1]
	chars := " \t\n\r"
	if len(argv) == 3 {
		chars = argv[2]
	}
	if chars == "" {
		parts := make([]string, len(s))
		for i := range s {
			parts[i] = string(s[i])
		}
		return FormatList(parts), nil
	}
	// Tcl split keeps empty fields, so split by hand.
	var parts []string
	start := 0
	for i := 0; i < len(s); i++ {
		if strings.IndexByte(chars, s[i]) >= 0 {
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return FormatList(parts), nil
}

func cmdJoin(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 && len(argv) != 3 {
		return "", arityError("join", "list ?joinString?")
	}
	sep := " "
	if len(argv) == 3 {
		sep = argv[2]
	}
	items, err := ParseList(argv[1])
	if err != nil {
		return "", err
	}
	return strings.Join(items, sep), nil
}
