package tcl

import (
	"fmt"
	"strings"
	"time"

	"wafe/internal/obs"
)

// This file adds the Tcl 7→8 style "compile once, evaluate many"
// pipeline. A Script is the parser's command/word/token list, produced
// once and reusable across evaluations; Eval becomes compile+eval with
// an LRU intern cache keyed by the source string. Values remain
// strings throughout — compilation only amortizes tokenization, it
// never introduces a second value representation, so the string-only
// semantics Wafe relies on are untouched.

// Script is an immutable compiled script: the sequence of parsed
// commands produced by the parser. A Script may be evaluated any
// number of times, on any interpreter; command names are resolved at
// invocation time, so redefining or renaming a proc between
// evaluations behaves exactly as it would with re-parsed source.
type Script struct {
	// Source is the script text the Script was compiled from.
	Source string

	cmds []*parsedCommand

	// parseErr records the parse error that terminated compilation, if
	// any. The commands preceding the error are kept so that evaluation
	// can run them before reporting the error, exactly as the
	// incremental parse-as-you-go evaluator did.
	parseErr *Error
	// parseErrOff is the byte offset of the parse error in Source
	// (valid only when parseErr != nil).
	parseErrOff int
}

// ParseErrorInfo reports the parse error recorded on the script, if
// any: the bare message (without the line/column suffix), and the
// 1-based line and column of the offending construct in Source.
func (s *Script) ParseErrorInfo() (msg string, line, col int, ok bool) {
	if s.parseErr == nil {
		return "", 0, 0, false
	}
	line, col = LineCol(s.Source, s.parseErrOff)
	msg = s.parseErr.Value
	if i := strings.LastIndex(msg, " (line "); i >= 0 {
		msg = msg[:i]
	}
	return msg, line, col, true
}

// compileScript parses src into a Script. It never fails: a parse
// error is recorded on the Script and replayed at evaluation time,
// after the commands that precede it have run (matching the
// incremental evaluator, which only discovers a parse error once
// evaluation reaches the malformed command).
func compileScript(src string) *Script {
	s := &Script{Source: src}
	p := newParser(src)
	for {
		cmd, err := p.nextCommand()
		if err != nil {
			msg := err.Error()
			if pe, ok := err.(*ParseError); ok {
				s.parseErrOff = pe.Off
				line, col := LineCol(src, pe.Off)
				msg = fmt.Sprintf("%s (line %d, column %d)", msg, line, col)
			}
			s.parseErr = &Error{Code: CodeError, Value: msg}
			return s
		}
		if cmd == nil {
			return s
		}
		for i := range cmd.words {
			compileWordTokens(cmd.words[i].tokens)
		}
		s.cmds = append(s.cmds, cmd)
	}
}

// compileWordTokens eagerly compiles the nested [script] substitutions
// of a word so that evaluation never re-parses them.
func compileWordTokens(toks []token) {
	for i := range toks {
		t := &toks[i]
		switch t.kind {
		case tokCommand:
			t.script = compileScript(t.text)
		case tokVar:
			if t.hasIdx {
				compileWordTokens(t.index)
			}
		}
	}
}

// Compile parses src into a reusable Script. When src is malformed the
// returned Script is still evaluable — it runs the well-formed prefix
// and then reports the parse error, exactly as Eval on the raw source
// would — and the error is also returned for callers that want to
// reject bad scripts up front.
func Compile(src string) (*Script, error) {
	s := compileScript(src)
	if s.parseErr != nil {
		return s, s.parseErr
	}
	return s, nil
}

// IsComplete reports whether the script parsed without error.
func (s *Script) IsComplete() bool { return s.parseErr == nil }

// maxCachedSrcLen bounds the size of sources kept in the intern cache;
// larger scripts (generated programs, file contents) compile fresh so
// a single entry cannot dominate the cache's memory.
const maxCachedSrcLen = 64 * 1024

const (
	defaultScriptCacheSize = 512
	defaultExprCacheSize   = 256
)

// lruEntry is one node of the cache's recency list.
type lruEntry struct {
	key        string
	val        any
	prev, next *lruEntry
}

// lruCache is a small string-keyed cache with least-recently-used
// eviction. head is the most recently used entry.
type lruCache struct {
	cap  int
	m    map[string]*lruEntry
	head *lruEntry
	tail *lruEntry
}

func newLRUCache(cap int) *lruCache {
	return &lruCache{cap: cap, m: make(map[string]*lruEntry, cap)}
}

func (c *lruCache) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *lruCache) pushFront(e *lruEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lruCache) get(key string) (any, bool) {
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	if c.head != e {
		c.unlink(e)
		c.pushFront(e)
	}
	return e.val, true
}

func (c *lruCache) put(key string, val any) {
	if e, ok := c.m[key]; ok {
		e.val = val
		if c.head != e {
			c.unlink(e)
			c.pushFront(e)
		}
		return
	}
	e := &lruEntry{key: key, val: val}
	c.m[key] = e
	c.pushFront(e)
	if len(c.m) > c.cap {
		evict := c.tail
		c.unlink(evict)
		delete(c.m, evict.key)
	}
}

func (c *lruCache) len() int { return len(c.m) }

// SetScriptCacheSize resizes the compiled-script intern cache. A size
// of zero (or less) disables caching entirely, so every Eval compiles
// fresh — the knob the differential tests use to compare the cached
// and uncached paths. Resizing clears the cache.
func (in *Interp) SetScriptCacheSize(n int) {
	if n <= 0 {
		in.scriptCache = nil
		return
	}
	in.scriptCache = newLRUCache(n)
}

// SetExprCacheSize resizes the compiled-expression cache; zero (or
// less) disables it so every expr re-parses its source.
func (in *Interp) SetExprCacheSize(n int) {
	if n <= 0 {
		in.exprCache = nil
		return
	}
	in.exprCache = newLRUCache(n)
}

// ScriptCacheLen reports how many compiled scripts are interned
// (diagnostics and tests).
func (in *Interp) ScriptCacheLen() int {
	if in.scriptCache == nil {
		return 0
	}
	return in.scriptCache.len()
}

// compileCached returns the interned Script for src, compiling it on a
// cache miss.
func (in *Interp) compileCached(src string) *Script {
	if in.scriptCache == nil || len(src) > maxCachedSrcLen {
		return compileScript(src)
	}
	if v, ok := in.scriptCache.get(src); ok {
		if m := in.obs; m != nil {
			m.ScriptCacheHits.Inc()
		}
		return v.(*Script)
	}
	if m := in.obs; m != nil {
		m.ScriptCacheMisses.Inc()
	}
	s := compileScript(src)
	in.scriptCache.put(src, s)
	return s
}

// EvalScript evaluates a compiled script and returns the result of its
// last command. The completion-code and traceback behavior is
// identical to Eval on the script's source. Top-level evaluations
// (not nested [command] substitutions or loop bodies) are counted and
// timed when observability is attached, opened as "eval" spans when
// tracing is attached, and rooted into the profile when a profiling
// window is open.
func (in *Interp) EvalScript(s *Script) (string, error) {
	v, err := in.evalScriptV(s)
	return v.String(), err
}

// evalScriptV is EvalScript returning the typed value of the last
// command, so a numeric result produced by the bytecode engine (an
// expr, an incr) crosses nested-script boundaries without a
// format/re-parse round trip. The returned Value is always
// "storage-normalized": either a string, or a number whose machine
// representation round-trips through its string form (normFloat).
func (in *Interp) evalScriptV(s *Script) (Value, error) {
	if in.nesting != 0 {
		return in.evalScriptBody(s)
	}
	m, t, prof := in.obs, in.trace, in.prof
	if m == nil && t == nil && prof == nil {
		return in.evalScriptBody(s)
	}
	var sp obs.SpanCtx
	if t != nil && s != nil {
		sp = t.StartSpan("eval", spanName(s.Source))
	}
	if prof != nil {
		in.profCmdChild = append(in.profCmdChild, 0)
	}
	start := time.Now()
	res, err := in.evalScriptBody(s)
	d := time.Since(start)
	if m != nil {
		m.Evals.Inc()
		m.EvalLatency.Observe(d)
	}
	if prof != nil {
		in.profToplevel(prof, d)
	}
	sp.End()
	return res, err
}

// evalScriptBody manages the nesting guard and routes the script to
// the selected execution engine. The bytecode engine steps aside while
// a profiling window is open: the tree walker carries the per-site
// attribution bookkeeping (profInvoke), so profiled evaluation runs
// there with identical semantics.
func (in *Interp) evalScriptBody(s *Script) (Value, error) {
	if s == nil {
		return Value{}, nil
	}
	in.nesting++
	defer func() { in.nesting-- }()
	if in.nesting > in.maxNesting {
		return Value{}, NewError("too many nested calls to Eval (infinite loop?)")
	}
	if in.nesting == 1 {
		// A fresh top-level evaluation starts a fresh traceback.
		in.errorUnwinding = false
	}
	if in.engine == EngineBytecode && in.prof == nil {
		return in.execScript(s)
	}
	return in.treeExec(s, 0, Value{})
}

// treeExec is the classic tree-walking evaluator: substitute each
// command's words, dispatch, repeat. It starts at command index ci
// with prev as the running result so the bytecode engine can hand a
// script off mid-way (when a command opened a profiling window).
// Kept bug-for-bug stable: it is the differential oracle the bytecode
// engine is checked against.
func (in *Interp) treeExec(s *Script, ci int, prev Value) (Value, error) {
	result := prev
	for _, cmd := range s.cmds[ci:] {
		argv, err := in.substWords(cmd.words)
		if err != nil {
			return Value{}, err
		}
		if len(argv) == 0 {
			continue
		}
		var res string
		if in.prof != nil {
			res, err = in.profInvoke(s, cmd, argv)
		} else {
			res, err = in.invoke(argv)
		}
		result = strVal(res)
		if err != nil {
			if in.nesting == 1 {
				// The error reached the top level: finish the
				// traceback (or start it, for a top-level error).
				in.recordErrorInfo(err, fmt.Sprintf("while executing %q", argv[0]))
				in.errorUnwinding = false
			}
			return result, err
		}
	}
	if s.parseErr != nil {
		// The incremental evaluator runs every command preceding a
		// malformed one before reporting the parse error; replay that.
		return Value{}, s.parseErr
	}
	return result, nil
}
