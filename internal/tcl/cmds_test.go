package tcl

import (
	"os"
	"strings"
	"testing"
)

func TestSwitchRegexpMode(t *testing.T) {
	in := New()
	wantEval(t, in, `switch -regexp abc123 {{^[a-z]+[0-9]+$} {set r alnum} default {set r other}}`, "alnum")
	wantEval(t, in, `switch -regexp 999 {{^[a-z]+$} {set r alpha} default {set r dflt}}`, "dflt")
}

func TestSwitchInlinePairs(t *testing.T) {
	in := New()
	wantEval(t, in, "switch x a {set r 1} x {set r matched}", "matched")
	wantErr(t, in, "switch x a", "extra switch pattern")
}

func TestUpvarLevels(t *testing.T) {
	in := New()
	evalOK(t, in, `
		proc outer {} {
			set v outer-value
			inner
			return $v
		}
		proc inner {} {
			upvar 1 v localv
			set localv changed-by-inner
		}
	`)
	wantEval(t, in, "outer", "changed-by-inner")
	// upvar #0 reaches the global frame from any depth.
	evalOK(t, in, "set g top")
	evalOK(t, in, `proc deep {} {upvar #0 g gg; set gg modified}`)
	evalOK(t, in, `proc mid {} {deep}`)
	evalOK(t, in, "mid")
	wantEval(t, in, "set g", "modified")
}

func TestUplevelExpressions(t *testing.T) {
	in := New()
	evalOK(t, in, `proc runUp {script} {uplevel $script}`)
	evalOK(t, in, `proc caller {} {
		set x 5
		runUp {set x 99}
		return $x
	}`)
	wantEval(t, in, "caller", "99")
	wantEval(t, in, `uplevel #0 set topvar 7`, "7")
	wantEval(t, in, "set topvar", "7")
	wantErr(t, in, "uplevel #9 {set x 1}", "bad level")
}

func TestRenameDelete(t *testing.T) {
	in := New()
	evalOK(t, in, "proc gone {} {return x}")
	evalOK(t, in, `rename gone ""`)
	wantErr(t, in, "gone", "invalid command name")
	wantErr(t, in, "rename nosuch other", "doesn't exist")
}

func TestInfoCommandsGlob(t *testing.T) {
	in := New()
	res := evalOK(t, in, "info commands l*")
	for _, c := range []string{"lindex", "llength", "list"} {
		if !strings.Contains(res, c) {
			t.Errorf("info commands l* missing %s: %q", c, res)
		}
	}
	if strings.Contains(res, "set") {
		t.Errorf("glob filter leaked: %q", res)
	}
	wantEval(t, in, "info tclversion", "6.7")
	wantErr(t, in, "info bogusopt", "bad info option")
}

func TestInfoVarsLocals(t *testing.T) {
	in := New()
	evalOK(t, in, "set gv 1")
	evalOK(t, in, `proc p {} {
		set lv 2
		return [info vars]
	}`)
	res := evalOK(t, in, "p")
	if !strings.Contains(res, "lv") || strings.Contains(res, "gv") {
		t.Errorf("info vars in proc = %q", res)
	}
	res = evalOK(t, in, "info globals gv")
	if res != "gv" {
		t.Errorf("info globals = %q", res)
	}
}

func TestArrayErrors(t *testing.T) {
	in := New()
	evalOK(t, in, "set scalar 5")
	wantErr(t, in, "set scalar(x) 1", "isn't array")
	evalOK(t, in, "set arr(k) v")
	wantErr(t, in, "set arr other", "is array")
	wantErr(t, in, "unset arr(missing)", "no such element")
	wantErr(t, in, "unset neverexisted", "no such variable")
	evalOK(t, in, "array unset arr")
	wantEval(t, in, "array exists arr", "0")
	wantErr(t, in, "array set odd {a}", "even number")
}

func TestLsortCommand(t *testing.T) {
	in := New()
	evalOK(t, in, "proc bylen {a b} {expr [string length $a] - [string length $b]}")
	wantEval(t, in, "lsort -command bylen {ccc a bb}", "a bb ccc")
	wantErr(t, in, "lsort -integer {1 x}", "expected integer")
	wantErr(t, in, "lsort -bogus {a}", "bad lsort option")
}

func TestCatchReturnCodes(t *testing.T) {
	in := New()
	wantEval(t, in, "catch {break}", "3")
	wantEval(t, in, "catch {continue}", "4")
	wantEval(t, in, "proc r {} {return val}; catch {r}", "0")
	// Return inside catch at proc level.
	evalOK(t, in, `proc f {} {
		set code [catch {return inner} msg]
		return "code=$code msg=$msg"
	}`)
	// catch intercepts the return before it unwinds the proc.
	wantEval(t, in, "f", "code=2 msg=inner")
}

func TestScanEdgeCases(t *testing.T) {
	in := New()
	wantEval(t, in, "scan {x42} {x%d} n", "1")
	wantEval(t, in, "set n", "42")
	wantEval(t, in, "scan {a} {%c} code", "1")
	wantEval(t, in, "set code", "97")
	wantEval(t, in, "scan {} {%d} n2", "0")
	wantEval(t, in, "scan {-17 rest} {%d %s} neg word", "2")
	wantEval(t, in, "set neg", "-17")
	wantErr(t, in, "scan abc {%z} v", "bad scan conversion")
}

func TestRegexpIndices(t *testing.T) {
	in := New()
	wantEval(t, in, "regexp -indices {b+} abbbc loc", "1")
	wantEval(t, in, "set loc", "1 3")
}

func TestSourceCommand(t *testing.T) {
	in := New()
	dir := t.TempDir()
	file := dir + "/lib.tcl"
	if err := writeFile(file, "proc fromfile {} {return sourced}\nset loaded 1\n"); err != nil {
		t.Fatal(err)
	}
	evalOK(t, in, "source "+file)
	wantEval(t, in, "fromfile", "sourced")
	wantEval(t, in, "set loaded", "1")
	wantErr(t, in, "source /no/such/file.tcl", "couldn't read file")
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestExprStringComparisonFallback(t *testing.T) {
	in := New()
	wantEval(t, in, `expr {"10" < "9"}`, "0")    // numeric comparison
	wantEval(t, in, `expr {"abc" < "abd"}`, "1") // string comparison
	wantErr(t, in, `expr {"abc" + 1}`, "non-numeric")
}

func TestExprPrecedence(t *testing.T) {
	in := New()
	wantEval(t, in, "expr 2+3*4", "14")
	wantEval(t, in, "expr {1 << 2 + 1}", "8") // + binds tighter than <<
	wantEval(t, in, "expr {1 | 2 & 3}", "3")  // & tighter than |
	wantEval(t, in, "expr {0 == 1 < 2}", "0") // < tighter than ==
	wantEval(t, in, "expr {-2**2}", "4")      // unary minus applies to operand first
	wantEval(t, in, "expr {1 ? 2 : 3 ? 4 : 5}", "2")
}

func TestNestedArraysInExpr(t *testing.T) {
	in := New()
	evalOK(t, in, "set a(x) 4")
	evalOK(t, in, "set i x")
	wantEval(t, in, "expr {$a($i) * 2}", "8")
}

func TestSemicolonInsideBraces(t *testing.T) {
	in := New()
	wantEval(t, in, "set s {a;b}; set s", "a;b")
}

func TestCommentsOnlyAtCommandStart(t *testing.T) {
	in := New()
	// '#' mid-command is a literal word, not a comment.
	wantEval(t, in, "llength {a # b}", "3")
}

func TestDeepNesting(t *testing.T) {
	in := New()
	wantEval(t, in, "expr [expr [expr [expr 1+1]+1]+1]", "4")
	wantEval(t, in, "lindex [list [list [list deep]]] 0", "deep")
	wantEval(t, in, "lindex [list [list [list a b]]] 0", "{a b}")
}

func TestErrorInfoTraceback(t *testing.T) {
	in := New()
	evalOK(t, in, "proc innerP {} {error boom}")
	evalOK(t, in, "proc outerP {} {innerP}")
	if _, err := in.Eval("outerP"); err == nil {
		t.Fatal("expected error")
	}
	info := in.ErrorInfo()
	if !strings.Contains(info, "boom") {
		t.Errorf("errorInfo missing message: %q", info)
	}
	if !strings.Contains(info, `"innerP"`) || !strings.Contains(info, `"outerP"`) {
		t.Errorf("errorInfo missing frames: %q", info)
	}
	// A caught error resets the traceback for the next one.
	evalOK(t, in, "catch {outerP}")
	if _, err := in.Eval("error second"); err == nil {
		t.Fatal("expected error")
	}
	info = in.ErrorInfo()
	if !strings.HasPrefix(info, "second") && !strings.Contains(info, "second") {
		t.Errorf("stale errorInfo: %q", info)
	}
	if strings.Contains(info, "boom") {
		t.Errorf("old traceback leaked: %q", info)
	}
}
