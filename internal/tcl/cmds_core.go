package tcl

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func arityError(name, usage string) error {
	return NewError("wrong # args: should be \"%s %s\"", name, usage)
}

func registerCoreCommands(in *Interp) {
	in.RegisterCommand("set", cmdSet)
	in.RegisterCommand("unset", cmdUnset)
	in.RegisterCommand("incr", cmdIncr)
	in.RegisterCommand("append", cmdAppend)
	in.RegisterCommand("expr", cmdExpr)
	in.RegisterCommand("if", cmdIf)
	in.RegisterCommand("while", cmdWhile)
	in.RegisterCommand("for", cmdFor)
	in.RegisterCommand("foreach", cmdForeach)
	in.RegisterCommand("switch", cmdSwitch)
	in.RegisterCommand("break", cmdBreak)
	in.RegisterCommand("continue", cmdContinue)
	in.RegisterCommand("return", cmdReturn)
	in.RegisterCommand("proc", cmdProc)
	in.RegisterCommand("error", cmdError)
	in.RegisterCommand("catch", cmdCatch)
	in.RegisterCommand("eval", cmdEval)
	in.RegisterCommand("subst", cmdSubst)
	in.RegisterCommand("global", cmdGlobal)
	in.RegisterCommand("upvar", cmdUpvar)
	in.RegisterCommand("uplevel", cmdUplevel)
	in.RegisterCommand("rename", cmdRename)
	in.RegisterCommand("info", cmdInfo)
	in.RegisterCommand("array", cmdArray)
	in.RegisterCommand("puts", cmdPuts)
	in.RegisterCommand("echo", cmdEcho)
	in.RegisterCommand("source", cmdSource)
	in.RegisterCommand("time", cmdTime)
	in.RegisterCommand("pid", cmdPid)
	in.RegisterCommand("exit", cmdExit)
}

func cmdSet(in *Interp, argv []string) (string, error) {
	switch len(argv) {
	case 2:
		return in.GetVar(argv[1])
	case 3:
		if err := in.SetVar(argv[1], argv[2]); err != nil {
			return "", err
		}
		return argv[2], nil
	}
	return "", arityError("set", "varName ?newValue?")
}

func cmdUnset(in *Interp, argv []string) (string, error) {
	if len(argv) < 2 {
		return "", arityError("unset", "varName ?varName ...?")
	}
	for _, name := range argv[1:] {
		if err := in.UnsetVar(name); err != nil {
			return "", err
		}
	}
	return "", nil
}

func cmdIncr(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 && len(argv) != 3 {
		return "", arityError("incr", "varName ?increment?")
	}
	delta := int64(1)
	if len(argv) == 3 {
		// Like the stored value, the increment tolerates surrounding
		// whitespace and an explicit leading '+' (Tcl trims both; the
		// oracle sweep caught the increment being parsed untrimmed).
		d, err := strconv.ParseInt(strings.TrimSpace(argv[2]), 0, 64)
		if err != nil {
			return "", NewError("expected integer but got %q", argv[2])
		}
		delta = d
	}
	v, err := in.incrVar(argv[1], delta)
	if err != nil {
		return "", err
	}
	return v.String(), nil
}

func cmdAppend(in *Interp, argv []string) (string, error) {
	if len(argv) < 2 {
		return "", arityError("append", "varName ?value value ...?")
	}
	cur := ""
	if in.VarExists(argv[1]) {
		s, err := in.GetVar(argv[1])
		if err != nil {
			return "", err
		}
		cur = s
	}
	cur += strings.Join(argv[2:], "")
	if err := in.SetVar(argv[1], cur); err != nil {
		return "", err
	}
	return cur, nil
}

func cmdExpr(in *Interp, argv []string) (string, error) {
	if len(argv) < 2 {
		return "", arityError("expr", "arg ?arg ...?")
	}
	return in.ExprEval(strings.Join(argv[1:], " "))
}

func cmdIf(in *Interp, argv []string) (string, error) {
	i := 1
	for {
		if i >= len(argv) {
			return "", NewError("wrong # args: no expression after \"if\"")
		}
		cond := argv[i]
		i++
		if i < len(argv) && argv[i] == "then" {
			i++
		}
		if i >= len(argv) {
			return "", NewError("wrong # args: no script following %q argument", cond)
		}
		body := argv[i]
		i++
		ok, err := in.ExprBool(cond)
		if err != nil {
			return "", err
		}
		if ok {
			return in.EvalScript(in.compileCached(body))
		}
		if i >= len(argv) {
			return "", nil
		}
		switch argv[i] {
		case "elseif":
			i++
			continue
		case "else":
			i++
			if i >= len(argv) {
				return "", NewError("wrong # args: no script following \"else\" argument")
			}
			return in.EvalScript(in.compileCached(argv[i]))
		default:
			// Implicit else body.
			return in.EvalScript(in.compileCached(argv[i]))
		}
	}
}

func cmdWhile(in *Interp, argv []string) (string, error) {
	if len(argv) != 3 {
		return "", arityError("while", "test command")
	}
	body := in.compileCached(argv[2])
	for {
		ok, err := in.ExprBool(argv[1])
		if err != nil {
			return "", err
		}
		if !ok {
			return "", nil
		}
		_, err = in.EvalScript(body)
		if err != nil {
			var te *Error
			if asTclError(err, &te) {
				if te.Code == CodeBreak {
					return "", nil
				}
				if te.Code == CodeContinue {
					continue
				}
			}
			return "", err
		}
	}
}

func cmdFor(in *Interp, argv []string) (string, error) {
	if len(argv) != 5 {
		return "", arityError("for", "start test next command")
	}
	if _, err := in.Eval(argv[1]); err != nil {
		return "", err
	}
	body := in.compileCached(argv[4])
	next := in.compileCached(argv[3])
	for {
		ok, err := in.ExprBool(argv[2])
		if err != nil {
			return "", err
		}
		if !ok {
			return "", nil
		}
		_, err = in.EvalScript(body)
		if err != nil {
			var te *Error
			if asTclError(err, &te) {
				if te.Code == CodeBreak {
					return "", nil
				}
				if te.Code != CodeContinue {
					return "", err
				}
			} else {
				return "", err
			}
		}
		if _, err := in.EvalScript(next); err != nil {
			// Tcl treats a break in the next script as loop
			// termination (Tcl_ForObjCmd); only continue and real
			// errors propagate. The oracle sweep caught break being
			// passed through raw.
			var te *Error
			if asTclError(err, &te) && te.Code == CodeBreak {
				return "", nil
			}
			return "", err
		}
	}
}

func cmdForeach(in *Interp, argv []string) (string, error) {
	if len(argv) != 4 {
		return "", arityError("foreach", "varName list command")
	}
	vars, err := ParseList(argv[1])
	if err != nil {
		return "", err
	}
	if len(vars) == 0 {
		return "", NewError("foreach varlist is empty")
	}
	items, err := ParseList(argv[2])
	if err != nil {
		return "", err
	}
	body := in.compileCached(argv[3])
	for i := 0; i < len(items); i += len(vars) {
		for j, v := range vars {
			val := ""
			if i+j < len(items) {
				val = items[i+j]
			}
			if err := in.SetVar(v, val); err != nil {
				return "", err
			}
		}
		_, err := in.EvalScript(body)
		if err != nil {
			var te *Error
			if asTclError(err, &te) {
				if te.Code == CodeBreak {
					return "", nil
				}
				if te.Code == CodeContinue {
					continue
				}
			}
			return "", err
		}
	}
	return "", nil
}

func cmdSwitch(in *Interp, argv []string) (string, error) {
	mode := "-exact"
	i := 1
	for i < len(argv) && strings.HasPrefix(argv[i], "-") {
		switch argv[i] {
		case "-exact", "-glob", "-regexp":
			mode = argv[i]
			i++
		case "--":
			i++
			goto parsed
		default:
			return "", NewError("bad switch option %q", argv[i])
		}
	}
parsed:
	if i >= len(argv) {
		return "", arityError("switch", "?options? string pattern body ... ?default body?")
	}
	subject := argv[i]
	i++
	var pairs []string
	if len(argv)-i == 1 {
		list, err := ParseList(argv[i])
		if err != nil {
			return "", err
		}
		pairs = list
	} else {
		pairs = argv[i:]
	}
	if len(pairs)%2 != 0 {
		return "", NewError("extra switch pattern with no body")
	}
	for k := 0; k < len(pairs); k += 2 {
		pat, body := pairs[k], pairs[k+1]
		matched := false
		if pat == "default" && k == len(pairs)-2 {
			matched = true
		} else {
			switch mode {
			case "-exact":
				matched = subject == pat
			case "-glob":
				matched = GlobMatch(pat, subject)
			case "-regexp":
				m, err := regexpMatch(pat, subject)
				if err != nil {
					return "", err
				}
				matched = m
			}
		}
		if matched {
			// Fall through bodies marked "-".
			for body == "-" && k+3 < len(pairs) {
				k += 2
				body = pairs[k+1]
			}
			if body == "-" {
				return "", NewError("no body specified for pattern %q", pat)
			}
			return in.Eval(body)
		}
	}
	return "", nil
}

func cmdBreak(in *Interp, argv []string) (string, error) {
	if len(argv) != 1 {
		return "", arityError("break", "")
	}
	return "", errBreak
}

func cmdContinue(in *Interp, argv []string) (string, error) {
	if len(argv) != 1 {
		return "", arityError("continue", "")
	}
	return "", errContinue
}

func cmdReturn(in *Interp, argv []string) (string, error) {
	val := ""
	if len(argv) > 2 {
		return "", arityError("return", "?value?")
	}
	if len(argv) == 2 {
		val = argv[1]
	}
	return "", &Error{Code: CodeReturn, Value: val}
}

func cmdProc(in *Interp, argv []string) (string, error) {
	if len(argv) != 4 {
		return "", arityError("proc", "name args body")
	}
	name := argv[1]
	formals, err := ParseList(argv[2])
	if err != nil {
		return "", err
	}
	p := &Proc{Name: name, Body: argv[3], compiled: compileScript(argv[3])}
	for _, f := range formals {
		parts, err := ParseList(f)
		if err != nil {
			return "", err
		}
		switch len(parts) {
		case 1:
			p.Args = append(p.Args, ProcArg{Name: parts[0]})
		case 2:
			p.Args = append(p.Args, ProcArg{Name: parts[0], Default: parts[1], HasDefault: true})
		default:
			return "", NewError("too many fields in argument specifier %q", f)
		}
	}
	in.procs[name] = p
	in.RegisterCommand(name, func(in *Interp, argv []string) (string, error) {
		return in.callProc(p, argv)
	})
	return "", nil
}

func cmdError(in *Interp, argv []string) (string, error) {
	if len(argv) < 2 {
		return "", arityError("error", "message")
	}
	return "", NewError("%s", argv[1])
}

func cmdCatch(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 && len(argv) != 3 {
		return "", arityError("catch", "command ?varName?")
	}
	res, err := in.Eval(argv[1])
	code := CodeOK
	if err != nil {
		var te *Error
		if asTclError(err, &te) {
			code = te.Code
			res = te.Value
		} else {
			code = CodeError
			res = err.Error()
		}
		// The error is handled; the next one starts a new traceback.
		in.errorUnwinding = false
	}
	if len(argv) == 3 {
		if err := in.SetVar(argv[2], res); err != nil {
			return "", err
		}
	}
	return strconv.Itoa(int(code)), nil
}

func cmdEval(in *Interp, argv []string) (string, error) {
	if len(argv) < 2 {
		return "", arityError("eval", "arg ?arg ...?")
	}
	return in.Eval(strings.Join(argv[1:], " "))
}

func cmdSubst(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 {
		return "", arityError("subst", "string")
	}
	return in.Subst(argv[1])
}

func cmdGlobal(in *Interp, argv []string) (string, error) {
	if len(argv) < 2 {
		return "", arityError("global", "varName ?varName ...?")
	}
	if in.Level() == 0 {
		return "", nil // global at global level is a no-op
	}
	for _, name := range argv[1:] {
		if err := in.linkVar(in.globalFrame(), name, name); err != nil {
			return "", err
		}
	}
	return "", nil
}

func (in *Interp) frameAt(spec string) (*frame, error) {
	level := in.Level()
	target := level - 1
	if spec != "" {
		if strings.HasPrefix(spec, "#") {
			n, err := strconv.Atoi(spec[1:])
			if err != nil {
				return nil, NewError("bad level %q", spec)
			}
			target = n
		} else {
			n, err := strconv.Atoi(spec)
			if err != nil {
				return nil, NewError("bad level %q", spec)
			}
			target = level - n
		}
	}
	if target < 0 || target > level {
		return nil, NewError("bad level %q", spec)
	}
	return in.frames[target], nil
}

func cmdUpvar(in *Interp, argv []string) (string, error) {
	if len(argv) < 3 {
		return "", arityError("upvar", "?level? otherVar localVar ?otherVar localVar ...?")
	}
	rest := argv[1:]
	levelSpec := ""
	if len(rest)%2 == 1 {
		levelSpec = rest[0]
		rest = rest[1:]
	}
	f, err := in.frameAt(levelSpec)
	if err != nil {
		return "", err
	}
	for i := 0; i+1 < len(rest); i += 2 {
		if err := in.linkVar(f, rest[i], rest[i+1]); err != nil {
			return "", err
		}
	}
	return "", nil
}

func cmdUplevel(in *Interp, argv []string) (string, error) {
	if len(argv) < 2 {
		return "", arityError("uplevel", "?level? command ?arg ...?")
	}
	rest := argv[1:]
	levelSpec := ""
	if len(rest) > 1 {
		c := rest[0]
		if strings.HasPrefix(c, "#") || isAllDigits(c) {
			levelSpec = c
			rest = rest[1:]
		}
	}
	f, err := in.frameAt(levelSpec)
	if err != nil {
		return "", err
	}
	// Temporarily truncate the frame stack to the target level.
	idx := -1
	for i, fr := range in.frames {
		if fr == f {
			idx = i
			break
		}
	}
	// The truncated stack must not share the saved slice's backing
	// array: a proc call during the uplevel would append over the
	// saved frames, so restoring would resurrect the wrong (and, with
	// frame pooling, already recycled) frame. The full-slice
	// expression forces appends to copy.
	saved := in.frames
	in.frames = in.frames[: idx+1 : idx+1]
	defer func() { in.frames = saved }()
	return in.Eval(strings.Join(rest, " "))
}

func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func cmdRename(in *Interp, argv []string) (string, error) {
	if len(argv) != 3 {
		return "", arityError("rename", "oldName newName")
	}
	old, nw := argv[1], argv[2]
	fn, ok := in.commands[old]
	if !ok {
		return "", NewError("can't rename %q: command doesn't exist", old)
	}
	// rename edits the command table directly, so it must invalidate
	// the bytecode engine's inline dispatch caches (and the
	// specialized-opcode guard) itself.
	in.cmdGen++
	if isSpecializedName(old) || isSpecializedName(nw) {
		in.specialGen++
	}
	if nw == "" {
		delete(in.commands, old)
		delete(in.procs, old)
		return "", nil
	}
	in.commands[nw] = fn
	if p, ok := in.procs[old]; ok {
		in.procs[nw] = p
		delete(in.procs, old)
	}
	delete(in.commands, old)
	return "", nil
}

func cmdInfo(in *Interp, argv []string) (string, error) {
	if len(argv) < 2 {
		return "", arityError("info", "option ?arg ...?")
	}
	switch argv[1] {
	case "exists":
		if len(argv) != 3 {
			return "", arityError("info exists", "varName")
		}
		if in.VarExists(argv[2]) {
			return "1", nil
		}
		return "0", nil
	case "commands":
		names := in.CommandNames()
		if len(argv) == 3 {
			var out []string
			for _, n := range names {
				if GlobMatch(argv[2], n) {
					out = append(out, n)
				}
			}
			names = out
		}
		return FormatList(names), nil
	case "procs":
		var names []string
		for n := range in.procs {
			if len(argv) == 3 && !GlobMatch(argv[2], n) {
				continue
			}
			names = append(names, n)
		}
		sort.Strings(names)
		return FormatList(names), nil
	case "vars", "locals", "globals":
		f := in.currentFrame()
		if argv[1] == "globals" {
			f = in.globalFrame()
		}
		var names []string
		for n := range f.vars {
			if len(argv) == 3 && !GlobMatch(argv[2], n) {
				continue
			}
			names = append(names, n)
		}
		sort.Strings(names)
		return FormatList(names), nil
	case "level":
		if len(argv) == 2 {
			return strconv.Itoa(in.Level()), nil
		}
		return "", NewError("info level with argument not supported")
	case "body":
		if len(argv) != 3 {
			return "", arityError("info body", "procName")
		}
		p, ok := in.procs[argv[2]]
		if !ok {
			return "", NewError("%q isn't a procedure", argv[2])
		}
		return p.Body, nil
	case "args":
		if len(argv) != 3 {
			return "", arityError("info args", "procName")
		}
		p, ok := in.procs[argv[2]]
		if !ok {
			return "", NewError("%q isn't a procedure", argv[2])
		}
		var names []string
		for _, a := range p.Args {
			names = append(names, a.Name)
		}
		return FormatList(names), nil
	case "tclversion":
		return "6.7", nil // the vintage Wafe was built against
	}
	return "", NewError("bad info option %q", argv[1])
}

func cmdArray(in *Interp, argv []string) (string, error) {
	if len(argv) < 3 {
		return "", arityError("array", "option arrayName ?arg ...?")
	}
	op, name := argv[1], argv[2]
	switch op {
	case "exists":
		_, ok := in.arrayVar(name)
		if ok {
			return "1", nil
		}
		return "0", nil
	case "size":
		v, ok := in.arrayVar(name)
		if !ok {
			return "0", nil
		}
		return strconv.Itoa(len(v.arr)), nil
	case "names":
		v, ok := in.arrayVar(name)
		if !ok {
			return "", nil
		}
		var names []string
		for k := range v.arr {
			if len(argv) == 4 && !GlobMatch(argv[3], k) {
				continue
			}
			names = append(names, k)
		}
		sort.Strings(names)
		return FormatList(names), nil
	case "get":
		v, ok := in.arrayVar(name)
		if !ok {
			return "", nil
		}
		var keys []string
		for k := range v.arr {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var out []string
		for _, k := range keys {
			out = append(out, k, v.arr[k])
		}
		return FormatList(out), nil
	case "set":
		if len(argv) != 4 {
			return "", arityError("array set", "arrayName list")
		}
		items, err := ParseList(argv[3])
		if err != nil {
			return "", err
		}
		if len(items)%2 != 0 {
			return "", NewError("list must have an even number of elements")
		}
		for i := 0; i+1 < len(items); i += 2 {
			if err := in.SetVar(name+"("+items[i]+")", items[i+1]); err != nil {
				return "", err
			}
		}
		return "", nil
	case "unset":
		f := in.currentFrame()
		if v, ok := f.vars[name]; ok && v.resolve().isArray {
			delete(f.vars, name)
			in.varEpoch++ // unset: cached refs to this name are invalid
		}
		return "", nil
	}
	return "", NewError("bad array option %q", op)
}

func cmdPuts(in *Interp, argv []string) (string, error) {
	args := argv[1:]
	newline := true
	if len(args) > 0 && args[0] == "-nonewline" {
		newline = false
		args = args[1:]
	}
	switch len(args) {
	case 1:
		in.Stdout(args[0])
		return "", nil
	case 2:
		if args[0] == "stdout" || args[0] == "stderr" {
			in.Stdout(args[1])
			return "", nil
		}
		ch, err := in.lookupChannel(args[0])
		if err != nil {
			return "", err
		}
		if ch.w == nil {
			return "", NewError("channel %q not opened for writing", args[0])
		}
		if _, err := ch.w.WriteString(args[1]); err != nil {
			return "", NewError("write %q: %v", args[0], err)
		}
		if newline {
			if err := ch.w.WriteByte('\n'); err != nil {
				return "", NewError("write %q: %v", args[0], err)
			}
		}
		return "", nil
	}
	return "", arityError("puts", "?-nonewline? ?fileId? string")
}

// cmdEcho is Wafe's echo: joins its arguments with spaces and prints.
func cmdEcho(in *Interp, argv []string) (string, error) {
	in.Stdout(strings.Join(argv[1:], " "))
	return "", nil
}

func cmdSource(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 {
		return "", arityError("source", "fileName")
	}
	data, err := os.ReadFile(argv[1])
	if err != nil {
		return "", NewError("couldn't read file %q: %v", argv[1], err)
	}
	return in.Eval(string(data))
}

func cmdTime(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 && len(argv) != 3 {
		return "", arityError("time", "command ?count?")
	}
	count := 1
	if len(argv) == 3 {
		c, err := strconv.Atoi(argv[2])
		if err != nil || c <= 0 {
			return "", NewError("expected positive integer but got %q", argv[2])
		}
		count = c
	}
	body := in.compileCached(argv[1])
	start := time.Now()
	for i := 0; i < count; i++ {
		if _, err := in.EvalScript(body); err != nil {
			return "", err
		}
	}
	per := time.Since(start).Microseconds() / int64(count)
	return fmt.Sprintf("%d microseconds per iteration", per), nil
}

func cmdPid(in *Interp, argv []string) (string, error) {
	return strconv.Itoa(os.Getpid()), nil
}

func cmdExit(in *Interp, argv []string) (string, error) {
	code := "0"
	if len(argv) == 2 {
		if _, err := strconv.Atoi(strings.TrimSpace(argv[1])); err != nil {
			return "", NewError("expected integer but got %q", argv[1])
		}
		code = argv[1]
	}
	return "", &Error{Code: CodeExit, Value: code}
}
