package tcl

import (
	"strings"
	"testing"
)

func TestLineCol(t *testing.T) {
	src := "abc\ndef\nghi"
	cases := []struct{ off, line, col int }{
		{0, 1, 1}, {2, 1, 3}, {4, 2, 1}, {8, 3, 1}, {10, 3, 3},
	}
	for _, c := range cases {
		if l, col := LineCol(src, c.off); l != c.line || col != c.col {
			t.Errorf("LineCol(%d) = %d:%d, want %d:%d", c.off, l, col, c.line, c.col)
		}
	}
}

func TestParseErrorPositions(t *testing.T) {
	s, err := Compile("set ok 1\necho {unbalanced")
	if err == nil || !strings.Contains(err.Error(), "line 2, column 6") {
		t.Errorf("Compile error = %v, want positioned parse error", err)
	}
	msg, line, col, ok := s.ParseErrorInfo()
	if !ok {
		t.Fatal("expected a recorded parse error")
	}
	if !strings.Contains(msg, "missing close-brace") {
		t.Errorf("msg = %q", msg)
	}
	if line != 2 || col != 6 {
		t.Errorf("parse error at %d:%d, want 2:6", line, col)
	}

	// The runtime error message carries the position suffix.
	in := New()
	if _, err := in.Eval("echo {unbalanced"); err == nil || !strings.Contains(err.Error(), "line 1, column 6") {
		t.Errorf("Eval error = %v, want line/column suffix", err)
	}
}

func TestInspectCommands(t *testing.T) {
	src := `set greeting hello
echo "$greeting [string length $greeting]" {braced}`
	s, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cmds := s.Commands()
	if len(cmds) != 2 {
		t.Fatalf("got %d commands, want 2", len(cmds))
	}
	if cmds[0].Pos != 0 || cmds[1].Pos != 19 {
		t.Errorf("command positions %d,%d, want 0,19", cmds[0].Pos, cmds[1].Pos)
	}
	w0 := cmds[0].Words[0]
	if lit, ok := w0.Literal(); !ok || lit != "set" || w0.Pos != 0 {
		t.Errorf("word0 = %+v", w0)
	}
	quoted := cmds[1].Words[1]
	if quoted.Form != '"' {
		t.Errorf("quoted word form = %q", quoted.Form)
	}
	var varPart, cmdPart bool
	for _, p := range quoted.Parts {
		switch p.Kind {
		case PartVar:
			if p.Text == "greeting" {
				varPart = true
			}
		case PartCommand:
			cmdPart = true
			if p.Script == nil || len(p.Script.Commands()) != 1 {
				t.Error("nested command script not compiled")
			}
		}
	}
	if !varPart || !cmdPart {
		t.Errorf("quoted word parts missing var/command: %+v", quoted.Parts)
	}
	braced := cmds[1].Words[2]
	if braced.Form != '{' {
		t.Errorf("braced word form = %q", braced.Form)
	}
	if lit, ok := braced.Literal(); !ok || lit != "braced" {
		t.Errorf("braced literal = %q, %v", lit, ok)
	}
}

func TestCommandMetaRegistry(t *testing.T) {
	in := New()
	if _, ok := in.LookupMeta("set"); !ok {
		t.Error("builtin set has no metadata")
	}
	metas := in.CommandMetas()
	if len(metas) == 0 {
		t.Fatal("no metadata registered")
	}
	for i := 1; i < len(metas); i++ {
		if metas[i-1].Name >= metas[i].Name {
			t.Fatalf("CommandMetas not sorted: %q >= %q", metas[i-1].Name, metas[i].Name)
		}
	}

	// Usage-bearing metadata enforces arity centrally.
	in.RegisterCommand("pair", func(_ *Interp, argv []string) (string, error) {
		return argv[1] + ":" + argv[2], nil
	})
	in.SetCommandMeta(CommandMeta{
		Name: "pair", MinArgs: 2, MaxArgs: 2,
		Usage: "pair a b",
	})
	if out, err := in.Eval("pair x y"); err != nil || out != "x:y" {
		t.Errorf("pair x y = %q, %v", out, err)
	}
	_, err := in.Eval("pair x")
	if err == nil || !strings.Contains(err.Error(), `wrong # args: should be "pair a b"`) {
		t.Errorf("central arity error = %v", err)
	}

	// Unregistering removes the metadata too.
	in.UnregisterCommand("pair")
	if _, ok := in.LookupMeta("pair"); ok {
		t.Error("metadata survived UnregisterCommand")
	}
}

func TestCheckExpr(t *testing.T) {
	if err := CheckExpr("1 + 2 * (3 - 4)"); err != nil {
		t.Errorf("valid expr rejected: %v", err)
	}
	// Barewords are accepted leniently: at eval time they may be
	// produced by substitutions the static checker cannot see.
	if err := CheckExpr(`red == "red"`); err != nil {
		t.Errorf("bareword operand rejected: %v", err)
	}
	err := CheckExpr("1 +")
	if err == nil {
		t.Fatal("incomplete expr accepted")
	}
	if _, ok := err.(*ParseError); !ok {
		t.Errorf("error type %T, want *ParseError", err)
	}
	if err := CheckExpr("1 + 2 extra"); err == nil {
		t.Error("trailing junk accepted")
	}
}

func TestBuiltinArityMessagesUnchanged(t *testing.T) {
	// Builtins keep their own arity checks (Usage is empty in the
	// builtin table); the registry must not change their messages.
	in := New()
	_, err := in.Eval("incr")
	if err == nil || !strings.Contains(err.Error(), "wrong # args") {
		t.Errorf("incr arity error = %v", err)
	}
}
