package tcl

import (
	"strings"
	"testing"
)

// Tests for the bytecode engine's mutable machinery: opcode
// specialization, the guards that route rebinds back through the
// command table, the inline dispatch caches, and the varRef
// variable-pointer caches. Semantics are covered by the differential
// oracle (oracle_test.go); these tests pin the cache-invalidation
// behavior itself.

func TestParseEngine(t *testing.T) {
	if e, err := ParseEngine("bytecode"); err != nil || e != EngineBytecode {
		t.Fatalf("ParseEngine(bytecode) = %v, %v", e, err)
	}
	if e, err := ParseEngine("tree"); err != nil || e != EngineTree {
		t.Fatalf("ParseEngine(tree) = %v, %v", e, err)
	}
	if _, err := ParseEngine("jit"); err == nil {
		t.Fatal("ParseEngine(jit) accepted")
	}
}

func TestEngineSelection(t *testing.T) {
	for _, e := range []Engine{EngineBytecode, EngineTree} {
		in := New()
		in.SetEngine(e)
		res, err := in.Eval("proc f {n} {expr {$n * 2}}; f 21")
		if err != nil || res != "42" {
			t.Fatalf("engine %v: %q, %v", e, res, err)
		}
	}
}

// TestSpecializedOpcodesEmitted proves the hot shapes actually compile
// to dedicated opcodes (not generic dispatch) — the point of v2.
func TestSpecializedOpcodesEmitted(t *testing.T) {
	in := New()
	cases := []struct {
		src  string
		want op
	}{
		{"set a 1", opSet},
		{"incr a", opIncr},
		{"expr {1 + 2}", opExpr},
		{"expr 1 + $a", opExprTmpl},
		{"while {0} {set a 1}", opWhile},
		{"for {set i 0} {$i < 3} {incr i} {set a $i}", opFor},
	}
	for _, c := range cases {
		s := compileScript(c.src)
		p := in.program(s)
		if len(p.cmds) != 1 {
			t.Fatalf("%q: %d commands", c.src, len(p.cmds))
		}
		last := p.insns[p.cmds[0].end-1]
		if last.op != c.want {
			t.Errorf("%q: dispatch opcode = %d, want %d", c.src, last.op, c.want)
		}
	}
}

// TestSpecializeRebindFallback: once a specialized builtin is rebound,
// already-compiled specialized opcodes must detect the stale
// specialization and dispatch through the command table.
func TestSpecializeRebindFallback(t *testing.T) {
	names := []string{"set", "incr", "expr", "while", "for"}
	for _, name := range names {
		in := New()
		// Compile (and run) a script using the specialized shape first.
		src := map[string]string{
			"set":   "set v 1",
			"incr":  "set v 1; incr v",
			"expr":  "set v [expr {1 + 1}]",
			"while": "set i 0; while {$i < 2} {incr i}",
			"for":   "for {set i 0} {$i < 2} {incr i} {}",
		}[name]
		if _, err := in.Eval(src); err != nil {
			t.Fatalf("%s: prime eval: %v", name, err)
		}
		// Rebind the builtin to a marker command and re-run the same
		// source: the cached Program must fall back to the new binding.
		in.RegisterCommand(name, func(in *Interp, argv []string) (string, error) {
			return "hijacked-" + argv[0], nil
		})
		res, err := in.Eval(src)
		if err != nil {
			t.Fatalf("%s: post-rebind eval: %v", name, err)
		}
		if !strings.Contains(res, "hijacked-") && res != "1" {
			// set/incr/expr return the marker directly; while/for keep
			// running commands after, so accept any non-error result as
			// long as the marker command was reachable.
			res2, _ := in.Eval(name + " x y z w")
			if !strings.HasPrefix(res2, "hijacked-") {
				t.Errorf("%s: rebind not honored (res %q, direct %q)", name, res, res2)
			}
		}
	}
}

// TestDispatchCacheInvalidation: the per-site inline command cache must
// revalidate against cmdGen when the command table changes.
func TestDispatchCacheInvalidation(t *testing.T) {
	in := New()
	in.RegisterCommand("probe", func(in *Interp, argv []string) (string, error) {
		return "first", nil
	})
	if res, _ := in.Eval("probe"); res != "first" {
		t.Fatalf("probe = %q", res)
	}
	in.RegisterCommand("probe", func(in *Interp, argv []string) (string, error) {
		return "second", nil
	})
	if res, _ := in.Eval("probe"); res != "second" {
		t.Fatalf("probe after rebind = %q (stale inline cache)", res)
	}
	in.UnregisterCommand("probe")
	if _, err := in.Eval("probe"); err == nil || !strings.Contains(err.Error(), "invalid command name") {
		t.Fatalf("probe after unregister: %v", err)
	}
}

// TestVarRefInvalidation drives each event that must invalidate a
// cached name->variable resolution, inside a loop so the same compiled
// site is hit before and after the event.
func TestVarRefInvalidation(t *testing.T) {
	t.Run("unset-recreate", func(t *testing.T) {
		in := New()
		res, err := in.Eval(`
			set out {}
			for {set i 0} {$i < 4} {incr i} {
				set t $i
				lappend out $t
				unset t
			}
			set out`)
		if err != nil || res != "0 1 2 3" {
			t.Fatalf("%q, %v", res, err)
		}
	})
	t.Run("upvar-relink", func(t *testing.T) {
		// The same compiled `set x ...` site writes a local first, then
		// an upvar alias: the varRef cached for the local must not
		// survive the relink.
		in := New()
		res, err := in.Eval(`
			proc write {useAlias} {
				set x local
				if {$useAlias} {upvar g x}
				set x written-$useAlias
				return $x
			}
			set g untouched
			write 0
			write 1
			set g`)
		if err != nil || res != "written-1" {
			t.Fatalf("%q, %v", res, err)
		}
	})
	t.Run("scalar-to-array", func(t *testing.T) {
		in := New()
		// Read x through a compiled site, convert x to an array through
		// a fresh name binding, and re-read: must report the array error,
		// not a stale scalar value.
		if _, err := in.Eval("set x 1; set x"); err != nil {
			t.Fatal(err)
		}
		if _, err := in.Eval("unset x; set x(k) v"); err != nil {
			t.Fatal(err)
		}
		_, err := in.Eval("set x")
		if err == nil || !strings.Contains(err.Error(), "variable is array") {
			t.Fatalf("reading array as scalar: %v", err)
		}
	})
	t.Run("frame-reuse", func(t *testing.T) {
		// Pooled frames must not leak varRef hits across activations:
		// two procs with the same local name, called alternately.
		in := New()
		res, err := in.Eval(`
			proc a {} {set loc A; set loc}
			proc b {} {set loc B; set loc}
			list [a] [b] [a] [b]`)
		if err != nil || res != "A B A B" {
			t.Fatalf("%q, %v", res, err)
		}
	})
}

// TestExprCmdFastPath covers the single-expr bracketed-script fast
// path inside expression ASTs ([expr ...] nested in a condition).
func TestExprCmdFastPath(t *testing.T) {
	in := New()
	res, err := in.Eval(`
		proc pf {n} {
			set result {}
			for {set d 2} {$d <= $n} {incr d} {
				while {[expr $n % $d] == 0} {lappend result $d; set n [expr $n / $d]}
			}
			return $result
		}
		pf 360`)
	if err != nil || res != "2 2 2 3 3 5" {
		t.Fatalf("pf 360 = %q, %v", res, err)
	}
	// Error inside the bracketed expr must carry the classic message.
	_, err = in.Eval("set z 0; while {[expr 1 % $z] == 0} {}")
	if err == nil || !strings.Contains(err.Error(), "divide by zero") {
		t.Fatalf("divide by zero through fast path: %v", err)
	}
	// The fast path is engine-gated: the tree engine gets identical
	// results through the classic route.
	tr := New()
	tr.SetEngine(EngineTree)
	res2, err := tr.Eval("proc pf {n} {set r {}; for {set d 2} {$d <= $n} {incr d} {while {[expr $n % $d] == 0} {lappend r $d; set n [expr $n / $d]}}; return $r}; pf 360")
	if err != nil || res2 != "2 2 2 3 3 5" {
		t.Fatalf("tree pf 360 = %q, %v", res2, err)
	}
}

// TestInternValue pins the canonical-spelling rule: only spellings
// every numeric parser agrees on may carry a typed representation.
func TestInternValue(t *testing.T) {
	typed := []string{"0", "7", "-3", "12345", "9223372036854775807", "-9223372036854775808"}
	for _, s := range typed {
		if v := internValue(s); v.kind != vInt || v.String() != s {
			t.Errorf("internValue(%q) = kind %d %q, want vInt %q", s, v.kind, v.String(), s)
		}
	}
	strings := []string{"", " 7", "7 ", "09", "+7", "0x10", "1.5", "1e3", "abc", "-", "--1",
		"9223372036854775808", "00", "-0"}
	for _, s := range strings {
		if v := internValue(s); v.kind != vString {
			t.Errorf("internValue(%q) = kind %d, want vString", s, v.kind)
		}
	}
}

// TestProcCallAllocs guards the arena-frame + argv-pool win: a proc
// call on the bytecode engine must not allocate per invocation beyond
// the result value.
func TestProcCallAllocs(t *testing.T) {
	in := New()
	if _, err := in.Eval("proc f {a b} {expr {$a+$b}}"); err != nil {
		t.Fatal(err)
	}
	in.Eval("f 3 4") // warm caches
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := in.Eval("f 3 4"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("proc call allocates %.1f/op, want <= 4", allocs)
	}
}
