package tcl

import (
	"sort"
	"strconv"
	"strings"
)

func registerListCommands(in *Interp) {
	in.RegisterCommand("list", cmdList)
	in.RegisterCommand("lindex", cmdLindex)
	in.RegisterCommand("llength", cmdLlength)
	in.RegisterCommand("lappend", cmdLappend)
	in.RegisterCommand("lrange", cmdLrange)
	in.RegisterCommand("linsert", cmdLinsert)
	in.RegisterCommand("lreplace", cmdLreplace)
	in.RegisterCommand("lsearch", cmdLsearch)
	in.RegisterCommand("lsort", cmdLsort)
	in.RegisterCommand("lreverse", cmdLreverse)
	in.RegisterCommand("concat", cmdConcat)
}

func cmdList(in *Interp, argv []string) (string, error) {
	return FormatList(argv[1:]), nil
}

func cmdLindex(in *Interp, argv []string) (string, error) {
	if len(argv) != 3 {
		return "", arityError("lindex", "list index")
	}
	items, err := ParseList(argv[1])
	if err != nil {
		return "", err
	}
	idx, err := parseIndex(argv[2], len(items))
	if err != nil {
		return "", err
	}
	if idx < 0 || idx >= len(items) {
		return "", nil
	}
	return items[idx], nil
}

func cmdLlength(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 {
		return "", arityError("llength", "list")
	}
	items, err := ParseList(argv[1])
	if err != nil {
		return "", err
	}
	return strconv.Itoa(len(items)), nil
}

func cmdLappend(in *Interp, argv []string) (string, error) {
	if len(argv) < 2 {
		return "", arityError("lappend", "varName ?value value ...?")
	}
	// Plain scalar fast path: one frame lookup instead of the three
	// (exists / read / write) the general path pays. Same error
	// surface: appending to an array variable reports the read error.
	if base, _, isArr := splitArrayRef(argv[1]); !isArr {
		f := in.currentFrame()
		var rv *variable
		if v, ok := f.vars[base]; ok {
			rv = v.resolve()
			if rv.isArray {
				return "", NewError("can't read %q: variable is array", argv[1])
			}
		} else {
			rv = &variable{}
			f.vars[base] = rv
		}
		res := appendListElems(rv.val.String(), argv[2:])
		rv.val = strVal(res)
		return res, nil
	}
	cur := ""
	if in.VarExists(argv[1]) {
		s, err := in.GetVar(argv[1])
		if err != nil {
			return "", err
		}
		cur = s
	}
	res := appendListElems(cur, argv[2:])
	if err := in.SetVar(argv[1], res); err != nil {
		return "", err
	}
	return res, nil
}

func appendListElems(cur string, elems []string) string {
	var b strings.Builder
	b.WriteString(cur)
	for _, v := range elems {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(QuoteListElement(v))
	}
	return b.String()
}

func cmdLrange(in *Interp, argv []string) (string, error) {
	if len(argv) != 4 {
		return "", arityError("lrange", "list first last")
	}
	items, err := ParseList(argv[1])
	if err != nil {
		return "", err
	}
	first, err := parseIndex(argv[2], len(items))
	if err != nil {
		return "", err
	}
	last, err := parseIndex(argv[3], len(items))
	if err != nil {
		return "", err
	}
	if first < 0 {
		first = 0
	}
	if last >= len(items) {
		last = len(items) - 1
	}
	if first > last {
		return "", nil
	}
	return FormatList(items[first : last+1]), nil
}

func cmdLinsert(in *Interp, argv []string) (string, error) {
	if len(argv) < 4 {
		return "", arityError("linsert", "list index element ?element ...?")
	}
	items, err := ParseList(argv[1])
	if err != nil {
		return "", err
	}
	idx, err := parseIndex(argv[2], len(items)+1)
	if err != nil {
		return "", err
	}
	if idx < 0 {
		idx = 0
	}
	if idx > len(items) {
		idx = len(items)
	}
	out := make([]string, 0, len(items)+len(argv)-3)
	out = append(out, items[:idx]...)
	out = append(out, argv[3:]...)
	out = append(out, items[idx:]...)
	return FormatList(out), nil
}

func cmdLreplace(in *Interp, argv []string) (string, error) {
	if len(argv) < 4 {
		return "", arityError("lreplace", "list first last ?element ...?")
	}
	items, err := ParseList(argv[1])
	if err != nil {
		return "", err
	}
	first, err := parseIndex(argv[2], len(items))
	if err != nil {
		return "", err
	}
	last, err := parseIndex(argv[3], len(items))
	if err != nil {
		return "", err
	}
	if first < 0 {
		first = 0
	}
	if last >= len(items) {
		last = len(items) - 1
	}
	if first > len(items) {
		first = len(items)
	}
	out := make([]string, 0, len(items))
	out = append(out, items[:first]...)
	out = append(out, argv[4:]...)
	tail := first
	if last >= first {
		tail = last + 1
	}
	if tail < len(items) {
		out = append(out, items[tail:]...)
	}
	return FormatList(out), nil
}

func cmdLsearch(in *Interp, argv []string) (string, error) {
	args := argv[1:]
	mode := "-glob"
	if len(args) == 3 {
		mode = args[0]
		args = args[1:]
	}
	if len(args) != 2 {
		return "", arityError("lsearch", "?mode? list pattern")
	}
	items, err := ParseList(args[0])
	if err != nil {
		return "", err
	}
	pat := args[1]
	for i, it := range items {
		var m bool
		switch mode {
		case "-exact":
			m = it == pat
		case "-glob":
			m = GlobMatch(pat, it)
		case "-regexp":
			mm, err := regexpMatch(pat, it)
			if err != nil {
				return "", err
			}
			m = mm
		default:
			return "", NewError("bad lsearch mode %q", mode)
		}
		if m {
			return strconv.Itoa(i), nil
		}
	}
	return "-1", nil
}

func cmdLsort(in *Interp, argv []string) (string, error) {
	args := argv[1:]
	mode := "-ascii"
	decreasing := false
	var command string
	for len(args) > 1 {
		switch args[0] {
		case "-ascii", "-integer", "-real", "-dictionary":
			mode = args[0]
		case "-increasing":
			decreasing = false
		case "-decreasing":
			decreasing = true
		case "-command":
			if len(args) < 3 {
				return "", NewError("\"-command\" option must be followed by comparison command")
			}
			args = args[1:]
			command = args[0]
			mode = "-command"
		default:
			return "", NewError("bad lsort option %q", args[0])
		}
		args = args[1:]
	}
	if len(args) != 1 {
		return "", arityError("lsort", "?options? list")
	}
	items, err := ParseList(args[0])
	if err != nil {
		return "", err
	}
	var sortErr error
	less := func(a, b string) bool { return a < b }
	switch mode {
	case "-integer":
		less = func(a, b string) bool {
			ai, e1 := strconv.ParseInt(strings.TrimSpace(a), 0, 64)
			bi, e2 := strconv.ParseInt(strings.TrimSpace(b), 0, 64)
			if e1 != nil && sortErr == nil {
				sortErr = NewError("expected integer but got %q", a)
			}
			if e2 != nil && sortErr == nil {
				sortErr = NewError("expected integer but got %q", b)
			}
			return ai < bi
		}
	case "-real":
		less = func(a, b string) bool {
			af, e1 := strconv.ParseFloat(strings.TrimSpace(a), 64)
			bf, e2 := strconv.ParseFloat(strings.TrimSpace(b), 64)
			if e1 != nil && sortErr == nil {
				sortErr = NewError("expected float but got %q", a)
			}
			if e2 != nil && sortErr == nil {
				sortErr = NewError("expected float but got %q", b)
			}
			return af < bf
		}
	case "-dictionary":
		less = func(a, b string) bool {
			return dictCompare(a, b) < 0
		}
	case "-command":
		less = func(a, b string) bool {
			res, err := in.Eval(command + " " + QuoteListElement(a) + " " + QuoteListElement(b))
			if err != nil && sortErr == nil {
				sortErr = err
			}
			n, _ := strconv.Atoi(strings.TrimSpace(res)) //wafevet:ignore checkscan (Tcl semantics: non-numeric comparator output sorts as 0)
			return n < 0
		}
	}
	sort.SliceStable(items, func(i, j int) bool {
		if decreasing {
			return less(items[j], items[i])
		}
		return less(items[i], items[j])
	})
	if sortErr != nil {
		return "", sortErr
	}
	return FormatList(items), nil
}

// dictCompare compares like Tcl's dictionary mode: case-insensitive,
// embedded numbers compare numerically.
func dictCompare(a, b string) int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ca, cb := a[i], b[j]
		if isDigit(ca) && isDigit(cb) {
			si, sj := i, j
			for i < len(a) && isDigit(a[i]) {
				i++
			}
			for j < len(b) && isDigit(b[j]) {
				j++
			}
			//wafevet:ignore checkscan (digit runs scanned above are valid ints by construction)
			na, _ := strconv.Atoi(a[si:i])
			nb, _ := strconv.Atoi(b[sj:j]) //wafevet:ignore checkscan (same digit-run argument)
			if na != nb {
				if na < nb {
					return -1
				}
				return 1
			}
			continue
		}
		la, lb := lower(ca), lower(cb)
		if la != lb {
			if la < lb {
				return -1
			}
			return 1
		}
		i++
		j++
	}
	switch {
	case len(a)-i < len(b)-j:
		return -1
	case len(a)-i > len(b)-j:
		return 1
	}
	return 0
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func lower(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 32
	}
	return c
}

func cmdLreverse(in *Interp, argv []string) (string, error) {
	if len(argv) != 2 {
		return "", arityError("lreverse", "list")
	}
	items, err := ParseList(argv[1])
	if err != nil {
		return "", err
	}
	for i, j := 0, len(items)-1; i < j; i, j = i+1, j-1 {
		items[i], items[j] = items[j], items[i]
	}
	return FormatList(items), nil
}

func cmdConcat(in *Interp, argv []string) (string, error) {
	var parts []string
	for _, a := range argv[1:] {
		t := strings.TrimSpace(a)
		if t != "" {
			parts = append(parts, t)
		}
	}
	return strings.Join(parts, " "), nil
}
