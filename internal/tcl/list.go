package tcl

import (
	"strings"
)

// ParseList splits a string into Tcl list elements, honouring braces,
// quotes and backslash escapes.
func ParseList(s string) ([]string, error) {
	var elems []string
	i := 0
	n := len(s)
	for {
		// Skip whitespace between elements.
		for i < n && isListSpace(s[i]) {
			i++
		}
		if i >= n {
			return elems, nil
		}
		switch s[i] {
		case '{':
			depth := 1
			i++
			start := i
			for i < n && depth > 0 {
				switch s[i] {
				case '\\':
					i++
				case '{':
					depth++
				case '}':
					depth--
					if depth == 0 {
						elems = append(elems, s[start:i])
					}
				}
				i++
			}
			if depth > 0 {
				return nil, NewError("unmatched open brace in list")
			}
			if i < n && !isListSpace(s[i]) {
				return nil, NewError("list element in braces followed by %q instead of space", s[i:i+1])
			}
		case '"':
			i++
			var b strings.Builder
			closed := false
			for i < n {
				c := s[i]
				if c == '\\' && i+1 < n {
					r, w := listBackslash(s[i:])
					b.WriteString(r)
					i += w
					continue
				}
				if c == '"' {
					closed = true
					i++
					break
				}
				b.WriteByte(c)
				i++
			}
			if !closed {
				return nil, NewError("unmatched open quote in list")
			}
			if i < n && !isListSpace(s[i]) {
				return nil, NewError("list element in quotes followed by %q instead of space", s[i:i+1])
			}
			elems = append(elems, b.String())
		default:
			var b strings.Builder
			for i < n && !isListSpace(s[i]) {
				if s[i] == '\\' && i+1 < n {
					r, w := listBackslash(s[i:])
					b.WriteString(r)
					i += w
					continue
				}
				b.WriteByte(s[i])
				i++
			}
			elems = append(elems, b.String())
		}
	}
}

func isListSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

// listBackslash interprets one backslash sequence at the start of s and
// returns the replacement and the number of input bytes consumed.
func listBackslash(s string) (string, int) {
	if len(s) < 2 {
		return "\\", 1
	}
	c := s[1]
	switch c {
	case 'a':
		return "\a", 2
	case 'b':
		return "\b", 2
	case 'f':
		return "\f", 2
	case 'n':
		return "\n", 2
	case 'r':
		return "\r", 2
	case 't':
		return "\t", 2
	case 'v':
		return "\v", 2
	case '\n':
		return " ", 2
	default:
		return string(c), 2
	}
}

// FormatList joins elements into a well-formed Tcl list, quoting each
// element as required so that ParseList(FormatList(x)) == x.
func FormatList(elems []string) string {
	var b strings.Builder
	for i, e := range elems {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(QuoteListElement(e))
	}
	return b.String()
}

// QuoteListElement quotes a single string so that it parses as exactly
// one list element.
func QuoteListElement(e string) string {
	if e == "" {
		return "{}"
	}
	if !strings.ContainsAny(e, " \t\n\r\v\f;\"$[]{}\\") {
		return e
	}
	if braceable(e) {
		return "{" + e + "}"
	}
	// Fall back to backslash quoting.
	var b strings.Builder
	for i := 0; i < len(e); i++ {
		c := e[i]
		switch c {
		case ' ', '\t', ';', '"', '$', '[', ']', '{', '}', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString("\\n")
		case '\r':
			b.WriteString("\\r")
		case '\v':
			b.WriteString("\\v")
		case '\f':
			b.WriteString("\\f")
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// braceable reports whether "{"+e+"}" parses back to exactly e: the
// simulation must follow the list scanner (a backslash skips the next
// byte for brace counting) and end at depth zero without closing early.
func braceable(e string) bool {
	depth := 0
	for i := 0; i < len(e); i++ {
		switch e[i] {
		case '\\':
			i++
			if i >= len(e) {
				return false // trailing backslash would escape the closer
			}
		case '{':
			depth++
		case '}':
			depth--
			if depth < 0 {
				return false
			}
		}
	}
	return depth == 0
}
