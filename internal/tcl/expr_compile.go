package tcl

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file compiles expressions to a small AST so that hot
// expressions (loop tests, callback arithmetic) parse once. The
// compiler is purely syntactic — it never touches the interpreter —
// so when it fails the classic parse-as-you-evaluate path
// (exprEvalClassic) runs instead and reproduces the original
// behavior, including the order in which substitution side effects
// and errors interleave with parsing.

type exprNode interface {
	eval(ev *exprEvaluator) (exprVal, error)
}

// exprEvaluator carries evaluation state: the interpreter for
// substitutions and the skip depth for short-circuited operands.
type exprEvaluator struct {
	in *Interp
	// skipDepth > 0 means the operand being evaluated will not be used
	// (short-circuited && / || or the untaken ternary branch); variable
	// and command substitution is suppressed and operator errors are
	// ignored, matching the classic parser.
	skipDepth int
	// slots holds the pre-fetched operand values of an expr template
	// (exprSlotNode); nil outside template evaluation.
	slots []Value
}

type exprLit struct{ v exprVal }

func (n *exprLit) eval(*exprEvaluator) (exprVal, error) { return n.v, nil }

type exprVarNode struct {
	tok token
	// ref is this site's variable-pointer cache. Compiled expression
	// ASTs are per-interpreter (exprCache and Program.loops both are),
	// so the frame-id/epoch validation in cachedScalar is sound here
	// for the same reason it is for Program.vrefs.
	ref varRef
}

func (n *exprVarNode) eval(ev *exprEvaluator) (exprVal, error) {
	if ev.skipDepth > 0 {
		return intVal(0), nil
	}
	if !n.tok.hasIdx {
		// Typed fast path: a plain scalar in the current frame hands
		// its machine representation straight to the evaluator. Arrays
		// and missing variables fall through to substToken, which
		// raises the classic error messages.
		if v, ok := ev.in.cachedScalar(&n.ref, n.tok.text); ok {
			return coerce(v.val)
		}
	}
	s, err := ev.in.substToken(n.tok)
	if err != nil {
		return exprVal{}, err
	}
	return coerce(strVal(s))
}

type exprCmdNode struct {
	script *Script

	// Single-expr fast path: when the bracketed script is exactly one
	// command that compiled to an expr template, the template can be
	// evaluated directly, skipping a full trip through the script
	// machinery (nesting bookkeeping, program lookup, instruction
	// dispatch) per evaluation. Resolved lazily per interpreter; owner
	// guards against a node ever being shared across interpreters.
	owner *Interp
	tmpl  *exprTemplate
	tcmd  *progCmd
}

func (n *exprCmdNode) eval(ev *exprEvaluator) (exprVal, error) {
	if ev.skipDepth > 0 {
		return intVal(0), nil
	}
	in := ev.in
	if n.owner != in {
		n.owner, n.tmpl, n.tcmd = in, nil, nil
		if n.script != nil && n.script.parseErr == nil {
			p := in.program(n.script)
			if len(p.cmds) == 1 {
				c := &p.cmds[0]
				if c.end-c.start == 1 && p.insns[c.start].op == opExprTmpl {
					n.tmpl = p.tmpls[p.insns[c.start].a]
					n.tcmd = c
				}
			}
		}
	}
	// The direct path is valid only under exactly the conditions where
	// execScript would have reached the same opExprTmpl with nothing
	// observable in between: bytecode engine, no profiler, expr still
	// the builtin, and an enclosing evaluation already on the stack
	// (at nesting 0 the inner script would run at level 1 and record
	// its own errorInfo frame, which only evalScriptV reproduces).
	// A template AST contains no command nodes, so skipping the
	// nesting increment cannot unbound recursion.
	if n.tmpl != nil && in.engine == EngineBytecode && in.prof == nil &&
		in.nesting >= 1 && in.specialGen == in.specialBase {
		v, _, err := in.execExprTmpl(n.tmpl, n.tcmd)
		if err != nil {
			return exprVal{}, err
		}
		return coerce(v)
	}
	v, err := in.evalScriptV(n.script)
	if err != nil {
		return exprVal{}, err
	}
	return coerce(v)
}

// exprQuotedNode is a "..." word; like the classic parser it is
// substituted even in skipped operands, and substitution errors
// propagate.
type exprQuotedNode struct{ w word }

func (n *exprQuotedNode) eval(ev *exprEvaluator) (exprVal, error) {
	s, err := ev.in.substWord(n.w)
	if err != nil {
		return exprVal{}, err
	}
	return strVal(s), nil
}

type exprUnaryNode struct {
	op byte
	x  exprNode
}

func (n *exprUnaryNode) eval(ev *exprEvaluator) (exprVal, error) {
	v, err := n.x.eval(ev)
	if err != nil {
		return exprVal{}, err
	}
	return applyUnary(n.op, v)
}

type exprBinaryNode struct {
	op   string
	l, r exprNode
}

func (n *exprBinaryNode) eval(ev *exprEvaluator) (exprVal, error) {
	l, err := n.l.eval(ev)
	if err != nil {
		return exprVal{}, err
	}
	r, err := n.r.eval(ev)
	if err != nil {
		return exprVal{}, err
	}
	if l.kind == vInt && r.kind == vInt {
		// A cached spelling on a vInt is always canonical (Value.s), so
		// the machine words can be combined directly.
		if v, ok := intBinaryFast(n.op, l.i, r.i); ok {
			return v, nil
		}
	}
	v, err := applyBinary(n.op, l, r)
	if err != nil {
		if ev.skipDepth > 0 {
			return intVal(0), nil
		}
		return exprVal{}, err
	}
	return v, nil
}

type exprAndOrNode struct {
	isAnd bool
	l, r  exprNode
}

func (n *exprAndOrNode) eval(ev *exprEvaluator) (exprVal, error) {
	l, err := n.l.eval(ev)
	if err != nil {
		return exprVal{}, err
	}
	lb, err := l.asBool()
	if err != nil {
		return exprVal{}, err
	}
	decided := (n.isAnd && !lb) || (!n.isAnd && lb)
	if decided {
		ev.skipDepth++
		_, err := n.r.eval(ev)
		ev.skipDepth--
		if err != nil {
			return exprVal{}, err
		}
		return intVal(b2i(lb)), nil
	}
	r, err := n.r.eval(ev)
	if err != nil {
		return exprVal{}, err
	}
	rb, err := r.asBool()
	if err != nil {
		return exprVal{}, err
	}
	if n.isAnd {
		return intVal(b2i(lb && rb)), nil
	}
	return intVal(b2i(lb || rb)), nil
}

// exprTernaryNode evaluates both branches — the untaken one in skip
// mode — exactly as the classic parser must, since it cannot skip
// over unparsed text.
type exprTernaryNode struct {
	cond, thenN, elseN exprNode
}

func (n *exprTernaryNode) eval(ev *exprEvaluator) (exprVal, error) {
	c, err := n.cond.eval(ev)
	if err != nil {
		return exprVal{}, err
	}
	b, err := c.asBool()
	if err != nil {
		return exprVal{}, err
	}
	if !b {
		ev.skipDepth++
	}
	tv, err := n.thenN.eval(ev)
	if !b {
		ev.skipDepth--
	}
	if err != nil {
		return exprVal{}, err
	}
	if b {
		ev.skipDepth++
	}
	fv, err := n.elseN.eval(ev)
	if b {
		ev.skipDepth--
	}
	if err != nil {
		return exprVal{}, err
	}
	if b {
		return tv, nil
	}
	return fv, nil
}

type exprFuncNode struct {
	name string
	args []exprNode
}

func (n *exprFuncNode) eval(ev *exprEvaluator) (exprVal, error) {
	args := make([]exprVal, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(ev)
		if err != nil {
			return exprVal{}, err
		}
		args[i] = v
	}
	return applyFunc(n.name, args)
}

// applyUnary applies a unary operator; shared between the classic
// parser and the compiled evaluator so behavior cannot drift.
func applyUnary(op byte, v exprVal) (exprVal, error) {
	switch op {
	case '-':
		v, err := coerce(v)
		if err != nil {
			return exprVal{}, err
		}
		switch v.kind {
		case vInt:
			return intVal(-v.i), nil
		case vFloat:
			return floatVal(-v.f), nil
		}
		return exprVal{}, NewError("can't negate non-numeric %q", v.s)
	case '+':
		v, err := coerce(v)
		if err != nil {
			return exprVal{}, err
		}
		if !v.isNumeric() {
			return exprVal{}, NewError("can't use non-numeric string %q as operand of \"+\"", v.s)
		}
		return v, nil
	case '!':
		b, err := v.asBool()
		if err != nil {
			c, cerr := coerce(v)
			if cerr != nil {
				return exprVal{}, err
			}
			b2, err2 := c.asBool()
			if err2 != nil {
				return exprVal{}, err
			}
			b = b2
		}
		return intVal(b2i(!b)), nil
	case '~':
		v, err := coerce(v)
		if err != nil {
			return exprVal{}, err
		}
		if v.kind != vInt {
			return exprVal{}, NewError("can't use non-integer as operand of \"~\"")
		}
		return intVal(^v.i), nil
	}
	return exprVal{}, NewError("unknown unary operator %q", string(op))
}

// peekExprOp returns the operator starting at pos (which must already
// be past any whitespace), or "".
func peekExprOp(src string, pos int) string {
	if pos >= len(src) {
		return ""
	}
	if pos+2 <= len(src) {
		switch two := src[pos : pos+2]; two {
		case "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "**":
			return two
		}
	}
	switch c := src[pos]; c {
	case '+', '-', '*', '/', '%', '<', '>', '&', '|', '^', '?', ':', '!', '~':
		return string(c)
	}
	// word operators eq/ne (string comparison)
	if pos+2 <= len(src) {
		w := src[pos : pos+2]
		if (w == "eq" || w == "ne") && (pos+2 == len(src) || !isVarNameChar(src[pos+2])) {
			return w
		}
	}
	return ""
}

// scanExprNumber scans a numeric literal starting at pos and returns
// the value and the position after it.
func scanExprNumber(src string, pos int) (exprVal, int, error) {
	start := pos
	n := len(src)
	isFloat := false
	if pos+1 < n && src[pos] == '0' && (src[pos+1] == 'x' || src[pos+1] == 'X') {
		pos += 2
		for pos < n && hexVal(src[pos]) >= 0 {
			pos++
		}
		iv, err := strconv.ParseInt(src[start:pos], 0, 64)
		if err != nil {
			if isRangeErr(err) {
				return exprVal{}, pos, errIntTooLarge()
			}
			return exprVal{}, pos, NewError("bad hex number %q", src[start:pos])
		}
		return intVal(iv), pos, nil
	}
	for pos < n {
		c := src[pos]
		if c >= '0' && c <= '9' {
			pos++
			continue
		}
		if c == '.' {
			isFloat = true
			pos++
			continue
		}
		if c == 'e' || c == 'E' {
			// exponent
			if pos+1 < n && (src[pos+1] == '+' || src[pos+1] == '-' || (src[pos+1] >= '0' && src[pos+1] <= '9')) {
				isFloat = true
				pos++
				if src[pos] == '+' || src[pos] == '-' {
					pos++
				}
				continue
			}
			break
		}
		break
	}
	text := src[start:pos]
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return exprVal{}, pos, NewError("bad number %q", text)
		}
		return floatVal(f), pos, nil
	}
	// Leading zero means octal in classic Tcl.
	if len(text) > 1 && text[0] == '0' {
		iv, err := strconv.ParseInt(text, 8, 64)
		if err == nil {
			return intVal(iv), pos, nil
		}
		if isRangeErr(err) {
			return exprVal{}, pos, errIntTooLarge()
		}
	}
	iv, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		if isRangeErr(err) {
			return exprVal{}, pos, errIntTooLarge()
		}
		return exprVal{}, pos, NewError("bad number %q", text)
	}
	return intVal(iv), pos, nil
}

// exprCompiler builds an exprNode tree from source without touching
// the interpreter. Any parse failure simply aborts compilation; the
// caller then evaluates via the classic parser.
type exprCompiler struct {
	src string
	pos int
	// lenient accepts unknown barewords as string literals instead of
	// bailing to the classic parser. The evaluating path never sets it
	// (bareword errors must interleave with substitution side effects
	// exactly as before); CheckExpr uses it for static syntax checking,
	// where a bareword is only a runtime concern, not a syntax error.
	lenient bool
}

func (c *exprCompiler) atEnd() bool { return c.pos >= len(c.src) }

func (c *exprCompiler) skipSpace() {
	for !c.atEnd() {
		ch := c.src[c.pos]
		if ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' {
			c.pos++
			continue
		}
		return
	}
}

func (c *exprCompiler) peekOp() string {
	c.skipSpace()
	return peekExprOp(c.src, c.pos)
}

func (c *exprCompiler) consume(op string) {
	c.skipSpace()
	c.pos += len(op)
}

var errExprCompile = fmt.Errorf("expression does not compile")

// compileExprAST compiles a full expression; any syntactic oddity
// (including trailing junk) returns an error so the classic parser
// handles the source instead.
func compileExprAST(src string) (exprNode, error) {
	c := &exprCompiler{src: src}
	n, err := c.compileTernary()
	if err != nil {
		return nil, err
	}
	c.skipSpace()
	if !c.atEnd() {
		return nil, errExprCompile
	}
	return n, nil
}

func (c *exprCompiler) compileTernary() (exprNode, error) {
	cond, err := c.compileBinary(0)
	if err != nil {
		return nil, err
	}
	if c.peekOp() == "?" {
		c.consume("?")
		thenN, err := c.compileTernary()
		if err != nil {
			return nil, err
		}
		if c.peekOp() != ":" {
			return nil, errExprCompile
		}
		c.consume(":")
		elseN, err := c.compileTernary()
		if err != nil {
			return nil, err
		}
		return &exprTernaryNode{cond: cond, thenN: thenN, elseN: elseN}, nil
	}
	return cond, nil
}

func (c *exprCompiler) compileBinary(level int) (exprNode, error) {
	if level >= len(precLevels) {
		return c.compileUnary()
	}
	left, err := c.compileBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		op := c.peekOp()
		found := false
		for _, cand := range precLevels[level] {
			if op == cand {
				found = true
				break
			}
		}
		if !found {
			return left, nil
		}
		c.consume(op)
		right, err := c.compileBinary(level + 1)
		if err != nil {
			return nil, err
		}
		if op == "&&" || op == "||" {
			left = &exprAndOrNode{isAnd: op == "&&", l: left, r: right}
		} else {
			left = foldBinary(op, left, right)
		}
	}
}

func (c *exprCompiler) compileUnary() (exprNode, error) {
	c.skipSpace()
	if c.atEnd() {
		return nil, errExprCompile
	}
	switch op := c.src[c.pos]; op {
	case '-', '+', '!', '~':
		c.pos++
		x, err := c.compileUnary()
		if err != nil {
			return nil, err
		}
		return foldUnary(op, x), nil
	}
	return c.compilePrimary()
}

func (c *exprCompiler) compilePrimary() (exprNode, error) {
	c.skipSpace()
	if c.atEnd() {
		return nil, errExprCompile
	}
	ch := c.src[c.pos]
	switch {
	case ch == '(':
		c.pos++
		n, err := c.compileTernary()
		if err != nil {
			return nil, err
		}
		c.skipSpace()
		if c.atEnd() || c.src[c.pos] != ')' {
			return nil, errExprCompile
		}
		c.pos++
		return n, nil
	case ch == '$':
		p := &parser{src: c.src, pos: c.pos}
		t, err := p.parseVarToken()
		if err != nil {
			return nil, err
		}
		c.pos = p.pos
		if t.hasIdx {
			compileWordTokens(t.index)
		}
		return &exprVarNode{tok: t}, nil
	case ch == '[':
		p := &parser{src: c.src, pos: c.pos}
		t, err := p.parseCommandToken()
		if err != nil {
			return nil, err
		}
		c.pos = p.pos
		return &exprCmdNode{script: compileScript(t.text)}, nil
	case ch == '"':
		p := &parser{src: c.src, pos: c.pos}
		w, err := p.parseQuotedWordForExpr()
		if err != nil {
			return nil, err
		}
		c.pos = p.pos
		compileWordTokens(w.tokens)
		if len(w.tokens) == 0 {
			return &exprLit{v: strVal("")}, nil
		}
		if len(w.tokens) == 1 && w.tokens[0].kind == tokText {
			return &exprLit{v: strVal(w.tokens[0].text)}, nil
		}
		return &exprQuotedNode{w: w}, nil
	case ch == '{':
		p := &parser{src: c.src, pos: c.pos}
		s, err := p.parseBracedWordForExpr()
		if err != nil {
			return nil, err
		}
		c.pos = p.pos
		return &exprLit{v: strVal(s)}, nil
	case ch >= '0' && ch <= '9' || ch == '.':
		v, np, err := scanExprNumber(c.src, c.pos)
		if err != nil {
			return nil, err
		}
		c.pos = np
		return &exprLit{v: v}, nil
	default:
		start := c.pos
		for !c.atEnd() && isVarNameChar(c.src[c.pos]) {
			c.pos++
		}
		if c.pos == start {
			return nil, errExprCompile
		}
		name := c.src[start:c.pos]
		c.skipSpace()
		if !c.atEnd() && c.src[c.pos] == '(' {
			return c.compileFunc(name)
		}
		switch strings.ToLower(name) {
		case "true", "yes", "on":
			return &exprLit{v: intVal(1)}, nil
		case "false", "no", "off":
			return &exprLit{v: intVal(0)}, nil
		case "inf":
			return &exprLit{v: floatVal(math.Inf(1))}, nil
		case "nan":
			return &exprLit{v: floatVal(math.NaN())}, nil
		}
		// Unknown barewords go to the classic parser, which raises the
		// error after any preceding substitutions have run. A lenient
		// (static-check) compile treats them as string operands.
		if c.lenient {
			return &exprLit{v: strVal(name)}, nil
		}
		return nil, errExprCompile
	}
}

// CheckExpr statically checks the syntax of an expression source. It
// is lenient about barewords (which may be legal strings at runtime)
// but rejects structural errors: unbalanced parentheses, missing
// operands, a ? without its :, trailing junk. On failure it returns a
// *ParseError whose offset points at the first unparsable character.
func CheckExpr(src string) error {
	c := &exprCompiler{src: src, lenient: true}
	_, err := c.compileTernary()
	if err != nil {
		if pe, ok := err.(*ParseError); ok {
			return pe
		}
		return &ParseError{Msg: "syntax error in expression", Off: c.pos}
	}
	c.skipSpace()
	if !c.atEnd() {
		return &ParseError{Msg: "extra tokens after expression", Off: c.pos}
	}
	return nil
}

func (c *exprCompiler) compileFunc(name string) (exprNode, error) {
	c.pos++ // consume (
	var args []exprNode
	c.skipSpace()
	if !c.atEnd() && c.src[c.pos] == ')' {
		c.pos++
	} else {
		for {
			n, err := c.compileTernary()
			if err != nil {
				return nil, err
			}
			args = append(args, n)
			c.skipSpace()
			if c.atEnd() {
				return nil, errExprCompile
			}
			if c.src[c.pos] == ',' {
				c.pos++
				continue
			}
			if c.src[c.pos] == ')' {
				c.pos++
				break
			}
			return nil, errExprCompile
		}
	}
	return foldFunc(name, args), nil
}

// foldUnary, foldBinary and foldFunc fold constant subtrees at compile
// time. Folding only happens when application succeeds — a folding
// error (divide by zero, non-numeric operand) keeps the node so the
// error is raised (or skipped) at evaluation time like before.
func foldUnary(op byte, x exprNode) exprNode {
	if lit, ok := x.(*exprLit); ok {
		if v, err := applyUnary(op, lit.v); err == nil {
			return &exprLit{v: v}
		}
	}
	return &exprUnaryNode{op: op, x: x}
}

func foldBinary(op string, l, r exprNode) exprNode {
	ll, lok := l.(*exprLit)
	rr, rok := r.(*exprLit)
	if lok && rok {
		if v, err := applyBinary(op, ll.v, rr.v); err == nil {
			return &exprLit{v: v}
		}
	}
	return &exprBinaryNode{op: op, l: l, r: r}
}

func foldFunc(name string, args []exprNode) exprNode {
	vals := make([]exprVal, len(args))
	for i, a := range args {
		lit, ok := a.(*exprLit)
		if !ok {
			return &exprFuncNode{name: name, args: args}
		}
		vals[i] = lit.v
	}
	if v, err := applyFunc(name, vals); err == nil {
		return &exprLit{v: v}
	}
	return &exprFuncNode{name: name, args: args}
}

// compiledExpr is the cache entry; a nil node marks a source that
// does not compile, so repeated evaluations skip the compile attempt
// and go straight to the classic parser.
type compiledExpr struct{ node exprNode }

func (in *Interp) compileExprCached(s string) exprNode {
	if in.exprCache == nil || len(s) > maxCachedSrcLen {
		n, err := compileExprAST(s)
		if err != nil {
			return nil
		}
		return n
	}
	if v, ok := in.exprCache.get(s); ok {
		if m := in.obs; m != nil {
			m.ExprCacheHits.Inc()
		}
		return v.(*compiledExpr).node
	}
	if m := in.obs; m != nil {
		m.ExprCacheMisses.Inc()
	}
	n, err := compileExprAST(s)
	if err != nil {
		n = nil
	}
	in.exprCache.put(s, &compiledExpr{node: n})
	return n
}
