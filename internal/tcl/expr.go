package tcl

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ExprEval evaluates a Tcl expression string. Variable ($name) and
// command ([cmd]) references inside the expression are resolved against
// the interpreter, which is what makes braced expr arguments work:
// expr {$i < 10}.
//
// Expressions compile once to an AST cached per source string; sources
// the compiler rejects evaluate through the classic interleaved
// parser, which reproduces the original error messages and the order
// in which substitution side effects surface.
func (in *Interp) ExprEval(s string) (string, error) {
	if n := in.compileExprCached(s); n != nil {
		ev := in.acquireEval()
		v, err := n.eval(ev)
		in.releaseEval(ev)
		if err != nil {
			return "", err
		}
		return v.String(), nil
	}
	return in.exprEvalClassic(s)
}

// exprEvalClassic is the original Tcl-6-style evaluator that parses
// and evaluates in one pass.
func (in *Interp) exprEvalClassic(s string) (string, error) {
	e := &exprParser{in: in, src: s}
	v, err := e.parseTernary()
	if err != nil {
		return "", err
	}
	e.skipSpace()
	if !e.atEnd() {
		return "", NewError("syntax error in expression %q", s)
	}
	return v.String(), nil
}

// ExprBool evaluates an expression and interprets the result as a
// boolean (used by if, while, for). Compiled expressions read the
// truth value straight off the typed result, skipping the
// format-to-string/ParseBool round trip of the string-only engine
// (asBool and ParseBool agree on every value either can produce).
func (in *Interp) ExprBool(s string) (bool, error) {
	if n := in.compileExprCached(s); n != nil {
		ev := in.acquireEval()
		v, err := n.eval(ev)
		in.releaseEval(ev)
		if err != nil {
			return false, err
		}
		return v.asBool()
	}
	r, err := in.exprEvalClassic(s)
	if err != nil {
		return false, err
	}
	return ParseBool(r)
}

// ParseBool interprets a Tcl boolean string: numbers (non-zero = true)
// or the words true/false/yes/no/on/off.
func ParseBool(s string) (bool, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	switch t {
	case "1", "true", "yes", "on", "t", "y":
		return true, nil
	case "0", "false", "no", "off", "f", "n":
		return false, nil
	}
	if iv, err := strconv.ParseInt(t, 0, 64); err == nil {
		return iv != 0, nil
	} else if isRangeErr(err) {
		return false, errIntTooLarge()
	}
	if fv, err := strconv.ParseFloat(t, 64); err == nil {
		return fv != 0, nil
	}
	return false, NewError("expected boolean value but got %q", s)
}

type exprParser struct {
	in  *Interp
	src string
	pos int
	// skipDepth > 0 means we are parsing an operand that will not be
	// used (short-circuited && / || or untaken ternary branch); variable
	// and command substitution is suppressed and operator errors ignored.
	skipDepth int
}

func (e *exprParser) atEnd() bool { return e.pos >= len(e.src) }

func (e *exprParser) skipSpace() {
	for !e.atEnd() {
		c := e.src[e.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			e.pos++
			continue
		}
		return
	}
}

func (e *exprParser) peekOp() string {
	e.skipSpace()
	return peekExprOp(e.src, e.pos)
}

func (e *exprParser) consume(op string) {
	e.skipSpace()
	e.pos += len(op)
}

func (e *exprParser) parseTernary() (exprVal, error) {
	cond, err := e.parseBinary(0)
	if err != nil {
		return exprVal{}, err
	}
	if e.peekOp() == "?" {
		e.consume("?")
		b, err := cond.asBool()
		if err != nil {
			return exprVal{}, err
		}
		if !b {
			e.skipDepth++
		}
		thenV, err := e.parseTernary()
		if !b {
			e.skipDepth--
		}
		if err != nil {
			return exprVal{}, err
		}
		if e.peekOp() != ":" {
			return exprVal{}, NewError("missing : in ternary expression")
		}
		e.consume(":")
		if b {
			e.skipDepth++
		}
		elseV, err := e.parseTernary()
		if b {
			e.skipDepth--
		}
		if err != nil {
			return exprVal{}, err
		}
		if b {
			return thenV, nil
		}
		return elseV, nil
	}
	return cond, nil
}

// binary operator precedence levels, low to high.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!=", "eq", "ne"},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
	{"**"},
}

func (e *exprParser) parseBinary(level int) (exprVal, error) {
	if level >= len(precLevels) {
		return e.parseUnary()
	}
	left, err := e.parseBinary(level + 1)
	if err != nil {
		return exprVal{}, err
	}
	for {
		op := e.peekOp()
		found := false
		for _, cand := range precLevels[level] {
			if op == cand {
				found = true
				break
			}
		}
		if !found {
			return left, nil
		}
		e.consume(op)
		// Short-circuit for && and ||: the right operand is parsed but
		// not evaluated when the left side already decides the result.
		if op == "&&" || op == "||" {
			lb, err := left.asBool()
			if err != nil {
				return exprVal{}, err
			}
			decided := (op == "&&" && !lb) || (op == "||" && lb)
			if decided {
				e.skipDepth++
			}
			right, err := e.parseBinary(level + 1)
			if decided {
				e.skipDepth--
				if err != nil {
					return exprVal{}, err
				}
				left = intVal(b2i(lb))
				continue
			}
			if err != nil {
				return exprVal{}, err
			}
			rb, err := right.asBool()
			if err != nil {
				return exprVal{}, err
			}
			var r bool
			if op == "&&" {
				r = lb && rb
			} else {
				r = lb || rb
			}
			left = intVal(b2i(r))
			continue
		}
		right, err := e.parseBinary(level + 1)
		if err != nil {
			return exprVal{}, err
		}
		left, err = applyBinary(op, left, right)
		if err != nil {
			if e.skipDepth > 0 {
				left = intVal(0)
				continue
			}
			return exprVal{}, err
		}
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// intBinaryFast evaluates the common integer operators without
// applyBinary's string-keyed switch and operand re-coercion. It
// reports ok=false for everything it does not handle — the uncommon
// operators (eq, ne, **) and every error case (divide by zero) — which
// then takes the applyBinary path, keeping error surfaces identical.
// The arithmetic bodies are copied from applyBinary verbatim.
func intBinaryFast(op string, a, b int64) (exprVal, bool) {
	if len(op) == 1 {
		switch op[0] {
		case '+':
			return intVal(a + b), true
		case '-':
			return intVal(a - b), true
		case '*':
			return intVal(a * b), true
		case '/':
			if b == 0 {
				return exprVal{}, false
			}
			q := a / b
			if (a%b != 0) && ((a < 0) != (b < 0)) {
				q--
			}
			return intVal(q), true
		case '%':
			if b == 0 {
				return exprVal{}, false
			}
			m := a % b
			if m != 0 && ((m < 0) != (b < 0)) {
				m += b
			}
			return intVal(m), true
		case '<':
			return intVal(b2i(a < b)), true
		case '>':
			return intVal(b2i(a > b)), true
		case '&':
			return intVal(a & b), true
		case '|':
			return intVal(a | b), true
		case '^':
			return intVal(a ^ b), true
		}
		return exprVal{}, false
	}
	switch op {
	case "==":
		return intVal(b2i(a == b)), true
	case "!=":
		return intVal(b2i(a != b)), true
	case "<=":
		return intVal(b2i(a <= b)), true
	case ">=":
		return intVal(b2i(a >= b)), true
	case "<<":
		return intVal(a << uint(b)), true
	case ">>":
		return intVal(a >> uint(b)), true
	}
	return exprVal{}, false
}

func applyBinary(op string, l, r exprVal) (exprVal, error) {
	switch op {
	case "eq":
		return intVal(b2i(l.String() == r.String())), nil
	case "ne":
		return intVal(b2i(l.String() != r.String())), nil
	}
	lc, err := coerce(l)
	if err != nil {
		return exprVal{}, err
	}
	rc, err := coerce(r)
	if err != nil {
		return exprVal{}, err
	}
	// String comparison when either side is non-numeric.
	if !lc.isNumeric() || !rc.isNumeric() {
		ls, rs := l.String(), r.String()
		switch op {
		case "==":
			return intVal(b2i(ls == rs)), nil
		case "!=":
			return intVal(b2i(ls != rs)), nil
		case "<":
			return intVal(b2i(ls < rs)), nil
		case ">":
			return intVal(b2i(ls > rs)), nil
		case "<=":
			return intVal(b2i(ls <= rs)), nil
		case ">=":
			return intVal(b2i(ls >= rs)), nil
		case "+":
			return exprVal{}, NewError("can't use non-numeric string %q as operand of %q", nonNumericOf(lc, rc), op)
		default:
			return exprVal{}, NewError("can't use non-numeric string %q as operand of %q", nonNumericOf(lc, rc), op)
		}
	}
	bothInt := lc.kind == vInt && rc.kind == vInt
	intOnly := func() error {
		if !bothInt {
			return NewError("can't use floating-point value as operand of %q", op)
		}
		return nil
	}
	switch op {
	case "+":
		if bothInt {
			return intVal(lc.i + rc.i), nil
		}
		return floatVal(lc.asFloat() + rc.asFloat()), nil
	case "-":
		if bothInt {
			return intVal(lc.i - rc.i), nil
		}
		return floatVal(lc.asFloat() - rc.asFloat()), nil
	case "*":
		if bothInt {
			return intVal(lc.i * rc.i), nil
		}
		return floatVal(lc.asFloat() * rc.asFloat()), nil
	case "/":
		if bothInt {
			if rc.i == 0 {
				return exprVal{}, NewError("divide by zero")
			}
			// Tcl integer division truncates toward negative infinity.
			q := lc.i / rc.i
			if (lc.i%rc.i != 0) && ((lc.i < 0) != (rc.i < 0)) {
				q--
			}
			return intVal(q), nil
		}
		if rc.asFloat() == 0 {
			return exprVal{}, NewError("divide by zero")
		}
		return floatVal(lc.asFloat() / rc.asFloat()), nil
	case "%":
		if err := intOnly(); err != nil {
			return exprVal{}, err
		}
		if rc.i == 0 {
			return exprVal{}, NewError("divide by zero")
		}
		m := lc.i % rc.i
		if m != 0 && ((m < 0) != (rc.i < 0)) {
			m += rc.i
		}
		return intVal(m), nil
	case "**":
		if bothInt && rc.i >= 0 {
			res := int64(1)
			for k := int64(0); k < rc.i; k++ {
				res *= lc.i
			}
			return intVal(res), nil
		}
		return floatVal(math.Pow(lc.asFloat(), rc.asFloat())), nil
	case "<<":
		if err := intOnly(); err != nil {
			return exprVal{}, err
		}
		return intVal(lc.i << uint(rc.i)), nil
	case ">>":
		if err := intOnly(); err != nil {
			return exprVal{}, err
		}
		return intVal(lc.i >> uint(rc.i)), nil
	case "&":
		if err := intOnly(); err != nil {
			return exprVal{}, err
		}
		return intVal(lc.i & rc.i), nil
	case "|":
		if err := intOnly(); err != nil {
			return exprVal{}, err
		}
		return intVal(lc.i | rc.i), nil
	case "^":
		if err := intOnly(); err != nil {
			return exprVal{}, err
		}
		return intVal(lc.i ^ rc.i), nil
	case "==":
		if bothInt {
			return intVal(b2i(lc.i == rc.i)), nil
		}
		return intVal(b2i(lc.asFloat() == rc.asFloat())), nil
	case "!=":
		if bothInt {
			return intVal(b2i(lc.i != rc.i)), nil
		}
		return intVal(b2i(lc.asFloat() != rc.asFloat())), nil
	case "<":
		if bothInt {
			return intVal(b2i(lc.i < rc.i)), nil
		}
		return intVal(b2i(lc.asFloat() < rc.asFloat())), nil
	case ">":
		if bothInt {
			return intVal(b2i(lc.i > rc.i)), nil
		}
		return intVal(b2i(lc.asFloat() > rc.asFloat())), nil
	case "<=":
		if bothInt {
			return intVal(b2i(lc.i <= rc.i)), nil
		}
		return intVal(b2i(lc.asFloat() <= rc.asFloat())), nil
	case ">=":
		if bothInt {
			return intVal(b2i(lc.i >= rc.i)), nil
		}
		return intVal(b2i(lc.asFloat() >= rc.asFloat())), nil
	}
	return exprVal{}, NewError("unknown operator %q", op)
}

func nonNumericOf(l, r exprVal) string {
	if !l.isNumeric() {
		return l.s
	}
	return r.s
}

func (e *exprParser) parseUnary() (exprVal, error) {
	e.skipSpace()
	if e.atEnd() {
		return exprVal{}, NewError("premature end of expression")
	}
	switch op := e.src[e.pos]; op {
	case '-', '+', '!', '~':
		e.pos++
		v, err := e.parseUnary()
		if err != nil {
			return exprVal{}, err
		}
		return applyUnary(op, v)
	}
	return e.parsePrimary()
}

func (e *exprParser) parsePrimary() (exprVal, error) {
	e.skipSpace()
	if e.atEnd() {
		return exprVal{}, NewError("premature end of expression")
	}
	c := e.src[e.pos]
	switch {
	case c == '(':
		e.pos++
		v, err := e.parseTernary()
		if err != nil {
			return exprVal{}, err
		}
		e.skipSpace()
		if e.atEnd() || e.src[e.pos] != ')' {
			return exprVal{}, NewError("missing close parenthesis")
		}
		e.pos++
		return v, nil
	case c == '$':
		p := &parser{src: e.src, pos: e.pos}
		t, err := p.parseVarToken()
		if err != nil {
			return exprVal{}, &Error{Code: CodeError, Value: err.Error()}
		}
		e.pos = p.pos
		if e.skipDepth > 0 {
			return intVal(0), nil
		}
		s, err := e.in.substToken(t)
		if err != nil {
			return exprVal{}, err
		}
		return coerce(strVal(s))
	case c == '[':
		p := &parser{src: e.src, pos: e.pos}
		t, err := p.parseCommandToken()
		if err != nil {
			return exprVal{}, &Error{Code: CodeError, Value: err.Error()}
		}
		e.pos = p.pos
		if e.skipDepth > 0 {
			return intVal(0), nil
		}
		s, err := e.in.Eval(t.text)
		if err != nil {
			return exprVal{}, err
		}
		return coerce(strVal(s))
	case c == '"':
		p := &parser{src: e.src, pos: e.pos}
		w, err := p.parseQuotedWordForExpr()
		if err != nil {
			return exprVal{}, &Error{Code: CodeError, Value: err.Error()}
		}
		e.pos = p.pos
		s, err := e.in.substWord(w)
		if err != nil {
			return exprVal{}, err
		}
		return strVal(s), nil
	case c == '{':
		p := &parser{src: e.src, pos: e.pos}
		w, err := p.parseBracedWordForExpr()
		if err != nil {
			return exprVal{}, &Error{Code: CodeError, Value: err.Error()}
		}
		e.pos = p.pos
		return strVal(w), nil
	case c >= '0' && c <= '9' || c == '.':
		return e.parseNumber()
	default:
		// Function call or bareword boolean.
		start := e.pos
		for !e.atEnd() && (isVarNameChar(e.src[e.pos])) {
			e.pos++
		}
		if e.pos == start {
			return exprVal{}, NewError("syntax error in expression near %q", e.src[e.pos:])
		}
		name := e.src[start:e.pos]
		e.skipSpace()
		if !e.atEnd() && e.src[e.pos] == '(' {
			return e.parseFuncCall(name)
		}
		switch strings.ToLower(name) {
		case "true", "yes", "on":
			return intVal(1), nil
		case "false", "no", "off":
			return intVal(0), nil
		case "inf":
			return floatVal(math.Inf(1)), nil
		case "nan":
			return floatVal(math.NaN()), nil
		}
		return exprVal{}, NewError("unknown function or bareword %q in expression", name)
	}
}

func (e *exprParser) parseNumber() (exprVal, error) {
	v, np, err := scanExprNumber(e.src, e.pos)
	e.pos = np
	return v, err
}

func (e *exprParser) parseFuncCall(name string) (exprVal, error) {
	e.pos++ // consume (
	var args []exprVal
	e.skipSpace()
	if !e.atEnd() && e.src[e.pos] == ')' {
		e.pos++
	} else {
		for {
			v, err := e.parseTernary()
			if err != nil {
				return exprVal{}, err
			}
			args = append(args, v)
			e.skipSpace()
			if e.atEnd() {
				return exprVal{}, NewError("missing ) in function call")
			}
			if e.src[e.pos] == ',' {
				e.pos++
				continue
			}
			if e.src[e.pos] == ')' {
				e.pos++
				break
			}
			return exprVal{}, NewError("syntax error in function arguments")
		}
	}
	return applyFunc(name, args)
}

func applyFunc(name string, args []exprVal) (exprVal, error) {
	need := func(n int) error {
		if len(args) != n {
			return NewError("function %q requires %d argument(s)", name, n)
		}
		return nil
	}
	f1 := func(fn func(float64) float64) (exprVal, error) {
		if err := need(1); err != nil {
			return exprVal{}, err
		}
		a, err := coerce(args[0])
		if err != nil {
			return exprVal{}, err
		}
		if !a.isNumeric() {
			return exprVal{}, NewError("non-numeric argument to %q", name)
		}
		return floatVal(fn(a.asFloat())), nil
	}
	f2 := func(fn func(float64, float64) float64) (exprVal, error) {
		if err := need(2); err != nil {
			return exprVal{}, err
		}
		a, err := coerceFloat(args[0])
		if err != nil {
			return exprVal{}, err
		}
		b, err := coerceFloat(args[1])
		if err != nil {
			return exprVal{}, err
		}
		return floatVal(fn(a, b)), nil
	}
	switch name {
	case "abs":
		if err := need(1); err != nil {
			return exprVal{}, err
		}
		a, err := coerce(args[0])
		if err != nil {
			return exprVal{}, err
		}
		if a.kind == vInt {
			if a.i < 0 {
				return intVal(-a.i), nil
			}
			return a, nil
		}
		return floatVal(math.Abs(a.asFloat())), nil
	case "int":
		if err := need(1); err != nil {
			return exprVal{}, err
		}
		a, err := coerce(args[0])
		if err != nil {
			return exprVal{}, err
		}
		if !a.isNumeric() {
			return exprVal{}, NewError("non-numeric argument to int()")
		}
		return intVal(int64(a.asFloat())), nil
	case "round":
		if err := need(1); err != nil {
			return exprVal{}, err
		}
		a, err := coerce(args[0])
		if err != nil {
			return exprVal{}, err
		}
		if !a.isNumeric() {
			return exprVal{}, NewError("non-numeric argument to round()")
		}
		return intVal(int64(math.Round(a.asFloat()))), nil
	case "double":
		if err := need(1); err != nil {
			return exprVal{}, err
		}
		a, err := coerce(args[0])
		if err != nil {
			return exprVal{}, err
		}
		if !a.isNumeric() {
			return exprVal{}, NewError("non-numeric argument to double()")
		}
		return floatVal(a.asFloat()), nil
	case "sqrt":
		return f1(math.Sqrt)
	case "sin":
		return f1(math.Sin)
	case "cos":
		return f1(math.Cos)
	case "tan":
		return f1(math.Tan)
	case "asin":
		return f1(math.Asin)
	case "acos":
		return f1(math.Acos)
	case "atan":
		return f1(math.Atan)
	case "sinh":
		return f1(math.Sinh)
	case "cosh":
		return f1(math.Cosh)
	case "tanh":
		return f1(math.Tanh)
	case "exp":
		return f1(math.Exp)
	case "log":
		return f1(math.Log)
	case "log10":
		return f1(math.Log10)
	case "floor":
		return f1(math.Floor)
	case "ceil":
		return f1(math.Ceil)
	case "atan2":
		return f2(math.Atan2)
	case "pow":
		return f2(math.Pow)
	case "fmod":
		return f2(math.Mod)
	case "hypot":
		return f2(math.Hypot)
	case "min":
		if len(args) == 0 {
			return exprVal{}, NewError("min() requires at least one argument")
		}
		best, err := coerce(args[0])
		if err != nil {
			return exprVal{}, err
		}
		for _, a := range args[1:] {
			c, err := coerce(a)
			if err != nil {
				return exprVal{}, err
			}
			if c.asFloat() < best.asFloat() {
				best = c
			}
		}
		return best, nil
	case "max":
		if len(args) == 0 {
			return exprVal{}, NewError("max() requires at least one argument")
		}
		best, err := coerce(args[0])
		if err != nil {
			return exprVal{}, err
		}
		for _, a := range args[1:] {
			c, err := coerce(a)
			if err != nil {
				return exprVal{}, err
			}
			if c.asFloat() > best.asFloat() {
				best = c
			}
		}
		return best, nil
	}
	return exprVal{}, NewError("unknown math function %q", name)
}

// parseQuotedWordForExpr parses a quoted word but allows arbitrary
// following characters (expr context, not command context).
func (p *parser) parseQuotedWordForExpr() (word, error) {
	p.pos++ // consume opening quote
	var toks []token
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			toks = append(toks, token{kind: tokText, text: lit.String()})
			lit.Reset()
		}
	}
	for !p.atEnd() {
		c := p.peek()
		switch c {
		case '"':
			p.pos++
			flush()
			return word{tokens: toks}, nil
		case '\\':
			s, err := p.parseBackslash()
			if err != nil {
				return word{}, err
			}
			lit.WriteString(s)
		case '$':
			flush()
			t, err := p.parseVarToken()
			if err != nil {
				return word{}, err
			}
			toks = append(toks, t)
		case '[':
			flush()
			t, err := p.parseCommandToken()
			if err != nil {
				return word{}, err
			}
			toks = append(toks, t)
		default:
			lit.WriteByte(c)
			p.pos++
		}
	}
	return word{}, fmt.Errorf("missing closing quote")
}

// parseBracedWordForExpr parses {literal} in expr context, returning the
// raw content.
func (p *parser) parseBracedWordForExpr() (string, error) {
	depth := 0
	i := p.pos
	start := p.pos + 1
	for i < len(p.src) {
		switch p.src[i] {
		case '\\':
			i++
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				content := p.src[start:i]
				p.pos = i + 1
				return content, nil
			}
		}
		i++
	}
	return "", fmt.Errorf("missing close-brace")
}
