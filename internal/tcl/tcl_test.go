package tcl

import (
	"strings"
	"testing"
)

// evalOK evaluates a script and fails the test on error.
func evalOK(t *testing.T, in *Interp, script string) string {
	t.Helper()
	res, err := in.Eval(script)
	if err != nil {
		t.Fatalf("Eval(%q) error: %v", script, err)
	}
	return res
}

func wantEval(t *testing.T, in *Interp, script, want string) {
	t.Helper()
	got := evalOK(t, in, script)
	if got != want {
		t.Errorf("Eval(%q) = %q, want %q", script, got, want)
	}
}

func wantErr(t *testing.T, in *Interp, script, substr string) {
	t.Helper()
	_, err := in.Eval(script)
	if err == nil {
		t.Fatalf("Eval(%q) expected error containing %q, got nil", script, substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Errorf("Eval(%q) error %q does not contain %q", script, err, substr)
	}
}

func TestSetAndGet(t *testing.T) {
	in := New()
	wantEval(t, in, "set x 42", "42")
	wantEval(t, in, "set x", "42")
	wantEval(t, in, "set y $x", "42")
	wantErr(t, in, "set nosuchvar", "no such variable")
}

func TestVariableSubstitutionForms(t *testing.T) {
	in := New()
	evalOK(t, in, "set a hello")
	wantEval(t, in, `set b "$a world"`, "hello world")
	wantEval(t, in, `set c ${a}x`, "hellox")
	wantEval(t, in, `set d $a$a`, "hellohello")
}

func TestArrayVariables(t *testing.T) {
	in := New()
	wantEval(t, in, "set a(x) 1", "1")
	wantEval(t, in, "set a(y) 2", "2")
	wantEval(t, in, `set a(x)`, "1")
	wantEval(t, in, "set k x; set a($k)", "1")
	wantEval(t, in, "array size a", "2")
	wantEval(t, in, "array names a", "x y")
	wantEval(t, in, "array exists a", "1")
	wantEval(t, in, "array exists nope", "0")
	wantEval(t, in, "array get a", "x 1 y 2")
	evalOK(t, in, "array set b {one 1 two 2}")
	wantEval(t, in, "set b(two)", "2")
	wantEval(t, in, "unset a(x); array size a", "1")
	wantErr(t, in, "set a", "variable is array")
}

func TestCommandSubstitution(t *testing.T) {
	in := New()
	wantEval(t, in, "set x [expr 1+2]", "3")
	wantEval(t, in, `set y "result=[expr 2*3]"`, "result=6")
	// Nested brackets.
	wantEval(t, in, "set z [expr [expr 1+1]*3]", "6")
}

func TestBracesPreventSubstitution(t *testing.T) {
	in := New()
	evalOK(t, in, "set x 5")
	wantEval(t, in, `set y {$x [expr 1]}`, "$x [expr 1]")
}

func TestBackslashEscapes(t *testing.T) {
	in := New()
	wantEval(t, in, `set x "a\tb"`, "a\tb")
	wantEval(t, in, `set x "a\nb"`, "a\nb")
	wantEval(t, in, `set x \$notavar`, "$notavar")
	wantEval(t, in, `set x "\x41"`, "A")
	wantEval(t, in, `set x "\101"`, "A")
	wantEval(t, in, `set x "A"`, "A")
}

func TestLineContinuation(t *testing.T) {
	in := New()
	wantEval(t, in, "set x \\\n 7", "7")
	wantEval(t, in, "expr 1 + \\\n 2", "3")
}

func TestComments(t *testing.T) {
	in := New()
	wantEval(t, in, "# a comment\nset x 3", "3")
	wantEval(t, in, "set x 4 ;# trailing words are args, not comments in the middle", "4")
}

func TestSemicolonSeparator(t *testing.T) {
	in := New()
	wantEval(t, in, "set a 1; set b 2; expr $a+$b", "3")
}

func TestIfElseifElse(t *testing.T) {
	in := New()
	wantEval(t, in, "if {1} {set r yes}", "yes")
	wantEval(t, in, "if {0} {set r yes} else {set r no}", "no")
	wantEval(t, in, "if {0} {set r a} elseif {1} {set r b} else {set r c}", "b")
	wantEval(t, in, "if 0 {set r a} {set r implicit-else}", "implicit-else")
	wantEval(t, in, "if 1 then {set r then-form}", "then-form")
}

func TestWhileLoop(t *testing.T) {
	in := New()
	wantEval(t, in, "set i 0; set s 0; while {$i < 5} {incr s $i; incr i}; set s", "10")
}

func TestForLoop(t *testing.T) {
	in := New()
	wantEval(t, in, "set s 0; for {set i 0} {$i < 4} {incr i} {incr s $i}; set s", "6")
}

func TestBreakContinue(t *testing.T) {
	in := New()
	wantEval(t, in, `
		set s {}
		for {set i 0} {$i < 10} {incr i} {
			if {$i == 3} continue
			if {$i == 6} break
			append s $i
		}
		set s`, "01245")
	wantErr(t, in, "break", "outside of a loop")
}

func TestForeach(t *testing.T) {
	in := New()
	wantEval(t, in, "set s {}; foreach x {a b c} {append s $x}; set s", "abc")
	wantEval(t, in, "set s {}; foreach {k v} {a 1 b 2} {append s $k=$v,}; set s", "a=1,b=2,")
	wantEval(t, in, "set s {}; foreach x {1 2 3} {if {$x==2} break; append s $x}; set s", "1")
}

func TestSwitch(t *testing.T) {
	in := New()
	wantEval(t, in, "switch b {a {set r 1} b {set r 2} default {set r 3}}", "2")
	wantEval(t, in, "switch zz {a {set r 1} default {set r dflt}}", "dflt")
	wantEval(t, in, "switch -glob foo.c {*.c {set r csrc} *.h {set r hdr}}", "csrc")
	wantEval(t, in, "switch -exact -- -x {-x {set r dash}}", "dash")
	// Fall-through bodies.
	wantEval(t, in, "switch a {a - b {set r ab} default {set r d}}", "ab")
	wantEval(t, in, "switch nomatch {a {set r 1}}", "")
}

func TestProcAndReturn(t *testing.T) {
	in := New()
	evalOK(t, in, "proc add {a b} {return [expr $a+$b]}")
	wantEval(t, in, "add 3 4", "7")
	evalOK(t, in, "proc last {a b} {expr $a*$b}")
	wantEval(t, in, "last 3 4", "12") // implicit return of last result
	evalOK(t, in, "proc dflt {a {b 10}} {expr $a+$b}")
	wantEval(t, in, "dflt 1", "11")
	wantEval(t, in, "dflt 1 2", "3")
	evalOK(t, in, "proc varargs {first args} {return [llength $args]}")
	wantEval(t, in, "varargs a b c d", "3")
	wantEval(t, in, "varargs a", "0")
	wantErr(t, in, "add 1", "no value given for parameter")
	wantErr(t, in, "add 1 2 3", "too many arguments")
}

func TestProcLocalScope(t *testing.T) {
	in := New()
	evalOK(t, in, "set x global-x")
	evalOK(t, in, "proc p {} {set x local-x; return $x}")
	wantEval(t, in, "p", "local-x")
	wantEval(t, in, "set x", "global-x")
}

func TestGlobalCommand(t *testing.T) {
	in := New()
	evalOK(t, in, "set counter 0")
	evalOK(t, in, "proc bump {} {global counter; incr counter}")
	evalOK(t, in, "bump; bump; bump")
	wantEval(t, in, "set counter", "3")
}

func TestUpvar(t *testing.T) {
	in := New()
	evalOK(t, in, "proc setit {varName val} {upvar $varName v; set v $val}")
	evalOK(t, in, "setit target 99")
	wantEval(t, in, "set target", "99")
}

func TestUplevel(t *testing.T) {
	in := New()
	evalOK(t, in, "proc up {} {uplevel {set fromup 5}}")
	evalOK(t, in, "up")
	wantEval(t, in, "set fromup", "5")
}

func TestCatch(t *testing.T) {
	in := New()
	wantEval(t, in, "catch {expr 1+1} r", "0")
	wantEval(t, in, "set r", "2")
	wantEval(t, in, "catch {error boom} msg", "1")
	wantEval(t, in, "set msg", "boom")
	wantEval(t, in, "catch {nosuchcommand}", "1")
	wantEval(t, in, "proc f {} {return early; set never 1}; catch {f} v; set v", "early")
}

func TestErrorCommand(t *testing.T) {
	in := New()
	wantErr(t, in, "error {my message}", "my message")
}

func TestEvalCommand(t *testing.T) {
	in := New()
	wantEval(t, in, "eval set ex 10", "10")
	wantEval(t, in, "eval {set ey 20}", "20")
	wantEval(t, in, "set cmd {set ez 30}; eval $cmd", "30")
}

func TestRename(t *testing.T) {
	in := New()
	evalOK(t, in, "proc orig {} {return hi}")
	evalOK(t, in, "rename orig fresh")
	wantEval(t, in, "fresh", "hi")
	wantErr(t, in, "orig", "invalid command name")
	// Registering the same command under various names (per the paper).
	evalOK(t, in, "proc sv {} {return both}")
	wantEval(t, in, "sv", "both")
}

func TestInfo(t *testing.T) {
	in := New()
	evalOK(t, in, "proc myproc {a b} {return x}")
	wantEval(t, in, "info exists nothere", "0")
	evalOK(t, in, "set here 1")
	wantEval(t, in, "info exists here", "1")
	wantEval(t, in, "info args myproc", "a b")
	wantEval(t, in, "info body myproc", "return x")
	if got := evalOK(t, in, "info procs my*"); got != "myproc" {
		t.Errorf("info procs = %q", got)
	}
	wantEval(t, in, "info level", "0")
	evalOK(t, in, "proc lvl {} {return [info level]}")
	wantEval(t, in, "lvl", "1")
}

func TestIncr(t *testing.T) {
	in := New()
	wantEval(t, in, "set i 5; incr i", "6")
	wantEval(t, in, "incr i 10", "16")
	wantEval(t, in, "incr i -1", "15")
	wantEval(t, in, "incr fresh", "1") // auto-create at 0
	wantErr(t, in, "set s abc; incr s", "expected integer")
}

func TestAppendCommand(t *testing.T) {
	in := New()
	wantEval(t, in, "append s a b c", "abc")
	wantEval(t, in, "append s d", "abcd")
}

func TestExprArithmetic(t *testing.T) {
	in := New()
	cases := [][2]string{
		{"expr 1+2", "3"},
		{"expr 10/3", "3"},
		{"expr -10/3", "-4"}, // floor division
		{"expr 10%3", "1"},
		{"expr -10%3", "2"}, // Tcl modulo sign follows divisor
		{"expr 2*3+4", "10"},
		{"expr 2*(3+4)", "14"},
		{"expr 7-10", "-3"},
		{"expr 1.5+2.5", "4.0"},
		{"expr 1e2", "100.0"},
		{"expr 0x10", "16"},
		{"expr 010", "8"}, // octal
		{"expr 2**10", "1024"},
		{"expr abs(-5)", "5"},
		{"expr int(3.9)", "3"},
		{"expr round(3.5)", "4"},
		{"expr sqrt(16)", "4.0"},
		{"expr min(3,1,2)", "1"},
		{"expr max(3,1,2)", "3"},
		{"expr 1<<4", "16"},
		{"expr 255>>4", "15"},
		{"expr 12&10", "8"},
		{"expr 12|10", "14"},
		{"expr 12^10", "6"},
		{"expr ~0", "-1"},
	}
	for _, c := range cases {
		wantEval(t, in, c[0], c[1])
	}
	wantErr(t, in, "expr 1/0", "divide by zero")
	wantErr(t, in, "expr 1%0", "divide by zero")
}

func TestExprLogicAndComparison(t *testing.T) {
	in := New()
	cases := [][2]string{
		{"expr 1<2", "1"},
		{"expr 2<=2", "1"},
		{"expr 3>4", "0"},
		{"expr 1==1.0", "1"},
		{"expr 1!=2", "1"},
		{"expr 1&&0", "0"},
		{"expr 1||0", "1"},
		{"expr !1", "0"},
		{"expr !0", "1"},
		{"expr 1<2 ? 10 : 20", "10"},
		{"expr 1>2 ? 10 : 20", "20"},
		{`expr {"abc" == "abc"}`, "1"},
		{`expr {"abc" < "abd"}`, "1"},
		{`expr {"abc" eq "abc"}`, "1"},
		{`expr {"1" eq "1.0"}`, "0"},
		{`expr {"a" ne "b"}`, "1"},
	}
	for _, c := range cases {
		wantEval(t, in, c[0], c[1])
	}
}

func TestExprShortCircuit(t *testing.T) {
	in := New()
	// The right side would error if evaluated... but Tcl evaluates
	// operands eagerly within one expression string; short-circuit only
	// guards evaluation of [cmd] parts. Verify values, not side effects.
	wantEval(t, in, "expr {0 && [error never]}", "0")
	wantEval(t, in, "expr {1 || [error never]}", "1")
}

func TestExprVariablesAndCommands(t *testing.T) {
	in := New()
	evalOK(t, in, "set n 6")
	wantEval(t, in, "expr {$n * 7}", "42")
	wantEval(t, in, "expr {[llength {a b c}] + 1}", "4")
}

func TestListCommands(t *testing.T) {
	in := New()
	wantEval(t, in, "list a b c", "a b c")
	wantEval(t, in, "list {a b} c", "{a b} c")
	wantEval(t, in, "list", "")
	wantEval(t, in, "llength {a b c}", "3")
	wantEval(t, in, "llength {}", "0")
	wantEval(t, in, "llength {{a b} c}", "2")
	wantEval(t, in, "lindex {a b c} 1", "b")
	wantEval(t, in, "lindex {a b c} end", "c")
	wantEval(t, in, "lindex {a b c} end-1", "b")
	wantEval(t, in, "lindex {a b c} 99", "")
	wantEval(t, in, "lrange {a b c d e} 1 3", "b c d")
	wantEval(t, in, "lrange {a b c d e} 2 end", "c d e")
	wantEval(t, in, "linsert {a c} 1 b", "a b c")
	wantEval(t, in, "lreplace {a b c d} 1 2 X Y", "a X Y d")
	wantEval(t, in, "lreplace {a b c} 1 1", "a c")
	wantEval(t, in, "lsearch {a b c} b", "1")
	wantEval(t, in, "lsearch {a b c} z", "-1")
	wantEval(t, in, "lsearch -exact {a* b c} a*", "0")
	wantEval(t, in, "lsort {c a b}", "a b c")
	wantEval(t, in, "lsort -integer {10 2 33}", "2 10 33")
	wantEval(t, in, "lsort -decreasing {a c b}", "c b a")
	wantEval(t, in, "lsort -dictionary {x10 x2 x1}", "x1 x2 x10")
	wantEval(t, in, "lreverse {1 2 3}", "3 2 1")
	wantEval(t, in, "concat {a b} {c d}", "a b c d")
	wantEval(t, in, "lappend L x; lappend L {y z}; set L", "x {y z}")
}

func TestListQuotingRoundTrip(t *testing.T) {
	in := New()
	wantEval(t, in, "lindex [list {a b} c] 0", "a b")
	wantEval(t, in, `lindex [list "has space" plain] 0`, "has space")
	wantEval(t, in, "llength [list {} {} {}]", "3")
	wantEval(t, in, "lindex [list {}] 0", "")
}

func TestStringCommands(t *testing.T) {
	in := New()
	wantEval(t, in, "string length hello", "5")
	wantEval(t, in, "string toupper abc", "ABC")
	wantEval(t, in, "string tolower ABC", "abc")
	wantEval(t, in, "string index hello 1", "e")
	wantEval(t, in, "string index hello end", "o")
	wantEval(t, in, "string range hello 1 3", "ell")
	wantEval(t, in, "string range hello 2 end", "llo")
	wantEval(t, in, "string compare a b", "-1")
	wantEval(t, in, "string compare b b", "0")
	wantEval(t, in, "string match {*.c} foo.c", "1")
	wantEval(t, in, "string match {a?c} abc", "1")
	wantEval(t, in, "string match {[a-c]x} bx", "1")
	wantEval(t, in, "string match {[a-c]x} dx", "0")
	wantEval(t, in, "string first ll hello", "2")
	wantEval(t, in, "string last l hello", "3")
	wantEval(t, in, "string trim {  hi  }", "hi")
	wantEval(t, in, "string trimleft xxhixx x", "hixx")
	wantEval(t, in, "string repeat ab 3", "ababab")
}

func TestFormat(t *testing.T) {
	in := New()
	wantEval(t, in, "format %d 42", "42")
	wantEval(t, in, "format %5d 42", "   42")
	wantEval(t, in, "format %-5d| 42", "42   |")
	wantEval(t, in, "format %05d 42", "00042")
	wantEval(t, in, "format %x 255", "ff")
	wantEval(t, in, "format %o 8", "10")
	wantEval(t, in, "format %c 65", "A")
	wantEval(t, in, "format %.2f 3.14159", "3.14")
	wantEval(t, in, "format %e 12345.678 ", "1.234568e+04")
	wantEval(t, in, "format %s%s a b", "ab")
	wantEval(t, in, "format %% ", "%")
	wantEval(t, in, "format %*d 6 42", "    42")
	wantErr(t, in, "format %d notanumber", "expected integer")
	wantErr(t, in, "format %d", "not enough arguments")
}

func TestScan(t *testing.T) {
	in := New()
	wantEval(t, in, "scan {42 abc} {%d %s} n s", "2")
	wantEval(t, in, "set n", "42")
	wantEval(t, in, "set s", "abc")
	wantEval(t, in, "scan {3.5} {%f} f", "1")
	wantEval(t, in, "set f", "3.5")
}

func TestRegexpRegsub(t *testing.T) {
	in := New()
	wantEval(t, in, "regexp {a(b+)c} xabbbcy whole sub", "1")
	wantEval(t, in, "set whole", "abbbc")
	wantEval(t, in, "set sub", "bbb")
	wantEval(t, in, "regexp {zzz} abc", "0")
	wantEval(t, in, "regexp -nocase {ABC} xabcx", "1")
	wantEval(t, in, "regsub {b+} abbbc X out", "1")
	wantEval(t, in, "set out", "aXc")
	wantEval(t, in, "regsub -all {o} foo 0 out2", "2")
	wantEval(t, in, "set out2", "f00")
	wantEval(t, in, "regsub {(a)(b)} ab {\\2\\1} sw", "1")
	wantEval(t, in, "set sw", "ba")
	wantEval(t, in, "regsub {x} aXa {&&} keep; set keep", "aXa")
}

func TestSplitJoin(t *testing.T) {
	in := New()
	wantEval(t, in, "split a/b/c /", "a b c")
	wantEval(t, in, "split {a b c}", "a b c")
	wantEval(t, in, "split a,,b ,", "a {} b")
	wantEval(t, in, "join {a b c} -", "a-b-c")
	wantEval(t, in, "join {a b c}", "a b c")
	wantEval(t, in, "split abc {}", "a b c")
}

func TestSubstCommand(t *testing.T) {
	in := New()
	evalOK(t, in, "set v 7")
	wantEval(t, in, `subst {v is $v and sum is [expr 1+1]}`, "v is 7 and sum is 2")
}

func TestEchoOutput(t *testing.T) {
	in := New()
	evalOK(t, in, "echo hello world")
	if got := in.Output(); got != "hello world\n" {
		t.Errorf("echo output = %q", got)
	}
	evalOK(t, in, "puts one; puts two")
	if got := in.Output(); got != "one\ntwo\n" {
		t.Errorf("puts output = %q", got)
	}
}

func TestExitCode(t *testing.T) {
	in := New()
	_, err := in.Eval("exit 3")
	n, ok := IsExit(err)
	if !ok || n != 3 {
		t.Fatalf("exit 3: got (%d,%v), err=%v", n, ok, err)
	}
}

func TestExitValidatesStatus(t *testing.T) {
	in := New()
	// A non-numeric status is a Tcl error, not a status-0 exit.
	wantErr(t, in, "exit foo", "expected integer")
	// Plain exit defaults to status 0.
	_, err := in.Eval("exit")
	if n, ok := IsExit(err); !ok || n != 0 {
		t.Fatalf("exit: got (%d,%v), err=%v", n, ok, err)
	}
	// IsExit never reports exit for ordinary errors.
	_, err = in.Eval("error boom")
	if _, ok := IsExit(err); ok {
		t.Fatal("IsExit reported an ordinary error as exit")
	}
	if _, ok := IsExit(nil); ok {
		t.Fatal("IsExit reported nil as exit")
	}
}

func TestUnknownHandler(t *testing.T) {
	in := New()
	in.Unknown = func(in *Interp, argv []string) (string, error) {
		return "unknown:" + argv[0], nil
	}
	wantEval(t, in, "definitelyNotACommand a b", "unknown:definitelyNotACommand")
}

func TestRecursionLimit(t *testing.T) {
	in := New()
	evalOK(t, in, "proc inf {} {inf}")
	wantErr(t, in, "inf", "too many nested calls")
}

func TestTimeCommand(t *testing.T) {
	in := New()
	res := evalOK(t, in, "time {set x 1} 10")
	if !strings.Contains(res, "microseconds per iteration") {
		t.Errorf("time result = %q", res)
	}
}

func TestNestedDataStructures(t *testing.T) {
	in := New()
	evalOK(t, in, "set tree {root {left {a b}} {right c}}")
	wantEval(t, in, "lindex $tree 0", "root")
	wantEval(t, in, "lindex [lindex $tree 1] 1", "a b")
}

// The paper's prime-factor demo logic, in pure Tcl, as an end-to-end
// interpreter exercise.
func TestPrimeFactorsInTcl(t *testing.T) {
	in := New()
	evalOK(t, in, `
		proc primefactors {n} {
			set result {}
			for {set d 2} {$d <= $n} {incr d} {
				while {[expr $n % $d] == 0} {
					lappend result $d
					set n [expr $n / $d]
				}
			}
			return $result
		}`)
	wantEval(t, in, "primefactors 60", "2 2 3 5")
	wantEval(t, in, "primefactors 97", "97")
	wantEval(t, in, "primefactors 1", "")
}

func TestWafeStyleDollarUsage(t *testing.T) {
	// The paper prints "$Resources" style variable references after
	// getResourceList; reproduce the list-in-variable pattern.
	in := New()
	evalOK(t, in, "set Resources {destroyCallback x y width height}")
	wantEval(t, in, "llength $Resources", "5")
	evalOK(t, in, "echo Resources: $Resources")
	if got := in.Output(); got != "Resources: destroyCallback x y width height\n" {
		t.Errorf("output = %q", got)
	}
}
