package tcl

import "sort"

// CommandMeta describes the call shape of a registered command: its
// argument-count bounds, option words and ensemble subcommands, plus
// which argument positions are scripts, expressions or output
// variables. RegisterCommand callers populate it with SetCommandMeta;
// the wafecheck linter (internal/analysis) reads the table to check
// scripts statically, and commands that set Usage get their arity
// enforced centrally with the standard "wrong # args" message.
//
// All counts and indexes refer to arguments after the command name:
// MinArgs/MaxArgs bound len(argv)-1, and index 1 is the first
// argument.
type CommandMeta struct {
	Name string

	// MinArgs and MaxArgs bound the argument count; MaxArgs < 0 means
	// unlimited.
	MinArgs int
	MaxArgs int

	// Usage, when non-empty, turns on central arity enforcement: a
	// call outside the bounds fails with
	//   wrong # args: should be "<Usage>"
	// before the command function runs. Commands that produce custom
	// messages leave Usage empty and keep their own checks.
	Usage string

	// Options lists the literal "-flag" words the command accepts.
	Options []string

	// Subcommands lists valid first-argument subcommand names for
	// ensemble commands (string, info, array, file).
	Subcommands []string

	// ScriptArgs lists argument indexes that the command evaluates as
	// scripts (loop and conditional bodies, catch/time bodies).
	ScriptArgs []int

	// ExprArgs lists argument indexes that the command evaluates as
	// expressions (expr operands, loop conditions).
	ExprArgs []int

	// VarArgs lists argument indexes that name a variable the command
	// WRITES (catch's ?varName?, gets's ?varName?), so a static
	// checker knows the variable is defined afterwards.
	VarArgs []int
}

// SetCommandMeta records metadata for a command. When meta.Usage is
// non-empty and the command is registered, its implementation is
// wrapped so that calls outside the MinArgs/MaxArgs bounds fail with
// the standard message before the command runs — embedders get
// uniform "wrong # args" reporting without writing the check by hand.
func (in *Interp) SetCommandMeta(meta CommandMeta) {
	if in.metas == nil {
		in.metas = make(map[string]CommandMeta)
	}
	in.metas[meta.Name] = meta
	if meta.Usage == "" {
		return
	}
	if fn, ok := in.commands[meta.Name]; ok {
		in.commands[meta.Name] = enforceArity(meta, fn)
	}
}

func enforceArity(meta CommandMeta, fn CommandFunc) CommandFunc {
	return func(in *Interp, argv []string) (string, error) {
		n := len(argv) - 1
		if n < meta.MinArgs || (meta.MaxArgs >= 0 && n > meta.MaxArgs) {
			return "", NewError("wrong # args: should be \"%s\"", meta.Usage)
		}
		return fn(in, argv)
	}
}

// LookupMeta returns the metadata recorded for a command.
func (in *Interp) LookupMeta(name string) (CommandMeta, bool) {
	m, ok := in.metas[name]
	return m, ok
}

// CommandMetas returns all recorded metadata entries sorted by name.
func (in *Interp) CommandMetas() []CommandMeta {
	out := make([]CommandMeta, 0, len(in.metas))
	for _, m := range in.metas {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// builtinMetas describes the standard command set registered by New.
// Bounds mirror each implementation's own arity check (Usage stays
// empty — the builtins keep their historical messages); the table
// exists for wafecheck and for introspection.
var builtinMetas = []CommandMeta{
	{Name: "set", MinArgs: 1, MaxArgs: 2},
	{Name: "unset", MinArgs: 1, MaxArgs: -1},
	{Name: "incr", MinArgs: 1, MaxArgs: 2, VarArgs: []int{1}},
	{Name: "append", MinArgs: 1, MaxArgs: -1, VarArgs: []int{1}},
	{Name: "expr", MinArgs: 1, MaxArgs: -1, ExprArgs: []int{1}},
	{Name: "if", MinArgs: 2, MaxArgs: -1},
	{Name: "while", MinArgs: 2, MaxArgs: 2, ExprArgs: []int{1}, ScriptArgs: []int{2}},
	{Name: "for", MinArgs: 4, MaxArgs: 4, ExprArgs: []int{2}, ScriptArgs: []int{1, 3, 4}},
	{Name: "foreach", MinArgs: 3, MaxArgs: 3, VarArgs: []int{1}, ScriptArgs: []int{3}},
	{Name: "switch", MinArgs: 2, MaxArgs: -1, Options: []string{"-exact", "-glob", "-regexp", "--"}},
	{Name: "break", MinArgs: 0, MaxArgs: 0},
	{Name: "continue", MinArgs: 0, MaxArgs: 0},
	{Name: "return", MinArgs: 0, MaxArgs: 1},
	{Name: "proc", MinArgs: 3, MaxArgs: 3},
	{Name: "error", MinArgs: 1, MaxArgs: 2},
	{Name: "catch", MinArgs: 1, MaxArgs: 2, ScriptArgs: []int{1}, VarArgs: []int{2}},
	{Name: "eval", MinArgs: 1, MaxArgs: -1},
	{Name: "subst", MinArgs: 1, MaxArgs: 1},
	{Name: "global", MinArgs: 1, MaxArgs: -1},
	{Name: "upvar", MinArgs: 2, MaxArgs: -1},
	{Name: "uplevel", MinArgs: 1, MaxArgs: -1},
	{Name: "rename", MinArgs: 2, MaxArgs: 2},
	{Name: "info", MinArgs: 1, MaxArgs: -1,
		Subcommands: []string{"exists", "commands", "procs", "vars", "locals", "globals", "level", "body", "args", "tclversion"}},
	{Name: "array", MinArgs: 2, MaxArgs: -1,
		Subcommands: []string{"exists", "size", "names", "get", "set", "unset"}},
	{Name: "puts", MinArgs: 1, MaxArgs: 3, Options: []string{"-nonewline"}},
	{Name: "source", MinArgs: 1, MaxArgs: 1},
	{Name: "time", MinArgs: 1, MaxArgs: 2, ScriptArgs: []int{1}},
	{Name: "list", MinArgs: 0, MaxArgs: -1},
	{Name: "concat", MinArgs: 0, MaxArgs: -1},
	{Name: "lindex", MinArgs: 2, MaxArgs: 2},
	{Name: "llength", MinArgs: 1, MaxArgs: 1},
	{Name: "lappend", MinArgs: 1, MaxArgs: -1, VarArgs: []int{1}},
	{Name: "lrange", MinArgs: 3, MaxArgs: 3},
	{Name: "linsert", MinArgs: 3, MaxArgs: -1},
	{Name: "lreplace", MinArgs: 3, MaxArgs: -1},
	{Name: "lsearch", MinArgs: 2, MaxArgs: 3, Options: []string{"-exact", "-glob", "-regexp"}},
	{Name: "lsort", MinArgs: 1, MaxArgs: -1,
		Options: []string{"-ascii", "-integer", "-real", "-dictionary", "-increasing", "-decreasing", "-command"}},
	{Name: "lreverse", MinArgs: 1, MaxArgs: 1},
	{Name: "string", MinArgs: 2, MaxArgs: -1,
		Subcommands: []string{"length", "tolower", "toupper", "trim", "trimleft", "trimright", "index", "range", "compare", "match", "first", "last", "repeat", "reverse"}},
	{Name: "format", MinArgs: 1, MaxArgs: -1},
	{Name: "scan", MinArgs: 3, MaxArgs: -1},
	{Name: "regexp", MinArgs: 2, MaxArgs: -1, Options: []string{"-nocase", "-indices", "--"}},
	{Name: "regsub", MinArgs: 4, MaxArgs: -1, Options: []string{"-nocase", "-all", "--"}, VarArgs: []int{4}},
	{Name: "split", MinArgs: 1, MaxArgs: 2},
	{Name: "join", MinArgs: 1, MaxArgs: 2},
	{Name: "glob", MinArgs: 1, MaxArgs: -1, Options: []string{"-nocomplain"}},
	{Name: "cd", MinArgs: 0, MaxArgs: 1},
	{Name: "pwd", MinArgs: 0, MaxArgs: 0},
	{Name: "open", MinArgs: 1, MaxArgs: 2},
	{Name: "close", MinArgs: 1, MaxArgs: 1},
	{Name: "gets", MinArgs: 1, MaxArgs: 2, VarArgs: []int{2}},
	{Name: "read", MinArgs: 1, MaxArgs: 2},
	{Name: "eof", MinArgs: 1, MaxArgs: 1},
	{Name: "flush", MinArgs: 1, MaxArgs: 1},
	{Name: "file", MinArgs: 2, MaxArgs: -1,
		Subcommands: []string{"exists", "isfile", "isdirectory", "size", "dirname", "tail", "rootname", "extension", "readable", "writable"}},
	{Name: "exec", MinArgs: 1, MaxArgs: -1},
	{Name: "case", MinArgs: 2, MaxArgs: -1},
	{Name: "pid", MinArgs: 0, MaxArgs: 0},
	{Name: "echo", MinArgs: 0, MaxArgs: -1},
	{Name: "exit", MinArgs: 0, MaxArgs: 1},
}

func registerBuiltinMetas(in *Interp) {
	for _, m := range builtinMetas {
		in.SetCommandMeta(m)
	}
}
