package tcl

import (
	"fmt"
	"strings"
)

// This file is the executor of execution engine v2. execScript runs a
// Script's compiled Program (compile.go): per command, a short run of
// word instructions fills a register window with typed Values, then a
// dispatch instruction invokes the command — through an inline cache
// for literal names, or through a dedicated opcode for the specialized
// shapes (set/incr/expr). Semantics are defined by the tree walker
// (script.go treeExec), which is kept as the differential oracle; every
// observable behavior here — results, error strings, errorInfo
// tracebacks, dispatch metrics — must match it exactly.

// execScript executes s under the bytecode engine. The caller
// (evalScriptBody) has already done the nesting bookkeeping. If a
// command opens a profiling window mid-script, the remainder is handed
// to the tree walker, which carries the profiler's per-site
// attribution.
func (in *Interp) execScript(s *Script) (Value, error) {
	return in.execProgram(in.program(s), s)
}

func (in *Interp) execProgram(p *Program, s *Script) (Value, error) {
	var regs []Value
	if p.nregs > 0 {
		regs = in.acquireRegs(p.nregs)
	}
	release := func() {
		if regs != nil {
			in.releaseRegs(regs)
		}
	}
	var result Value
	for ci := range p.cmds {
		if in.prof != nil {
			release()
			return in.treeExec(s, p.cmds[ci].srcIdx, result)
		}
		res, name, err := in.execCmd(p, &p.cmds[ci], regs)
		if err != nil {
			release()
			if in.nesting == 1 && name != "" {
				// The error reached the top level from a command
				// invocation (not from word substitution): finish the
				// traceback, exactly as the tree walker does.
				in.recordErrorInfo(err, fmt.Sprintf("while executing %q", name))
				in.errorUnwinding = false
			}
			return res, err
		}
		result = res
	}
	release()
	if s.parseErr != nil {
		return Value{}, s.parseErr
	}
	return result, nil
}

// execCmd runs one command's instruction range. It returns the
// command's result and, when the error came from the invocation itself
// rather than word substitution, the command name to report in the
// errorInfo traceback ("" suppresses the entry).
func (in *Interp) execCmd(p *Program, c *progCmd, regs []Value) (Value, string, error) {
	insns := p.insns[c.start:c.end]
	for i := range insns {
		ins := &insns[i]
		switch ins.op {
		case opConst:
			regs[ins.c] = p.consts[ins.a]

		case opVar:
			name := p.names[ins.a]
			if v, ok := in.cachedScalar(&p.vrefs[ins.a], name); ok {
				regs[ins.c] = v.val
				continue
			}
			// Missing variable or array: GetVar raises the classic
			// error message.
			s, err := in.GetVar(name)
			if err != nil {
				return Value{}, "", err
			}
			regs[ins.c] = strVal(s)

		case opWord:
			s, err := in.substWord(p.words[ins.a])
			if err != nil {
				return Value{}, "", err
			}
			regs[ins.c] = strVal(s)

		case opScript:
			v, err := in.evalScriptV(p.subs[ins.a])
			if err != nil {
				return Value{}, "", err
			}
			regs[ins.c] = v

		case opInvoke:
			argv := in.acquireArgv(int(ins.b))
			for j := range argv {
				argv[j] = regs[int(ins.a)+j].String()
			}
			name := argv[0]
			if m := in.obs; m != nil {
				m.Dispatch.Inc(name)
			}
			if dc := in.opCounts; dc != nil {
				dc.Invoke++
			}
			var fn CommandFunc
			if ins.c >= 0 {
				ca := &p.caches[ins.c]
				if ca.fn != nil && ca.gen == in.cmdGen {
					fn = ca.fn
				} else if f, ok := in.commands[name]; ok {
					ca.gen, ca.fn = in.cmdGen, f
					fn = f
				}
			} else if f, ok := in.commands[name]; ok {
				fn = f
			}
			if fn == nil {
				if in.Unknown != nil {
					res, err := in.Unknown(in, argv)
					in.releaseArgv(argv)
					return strVal(res), name, err
				}
				in.releaseArgv(argv)
				return Value{}, name, NewError("invalid command name %q", name)
			}
			res, err := fn(in, argv)
			in.releaseArgv(argv)
			return strVal(res), name, err

		case opSet:
			// The specialized shapes bypass the command table, so they
			// must re-check that the builtin is still bound
			// (specialGen) before running its semantics directly.
			if in.specialGen != in.specialBase {
				return in.execGenericFallback(c)
			}
			if m := in.obs; m != nil {
				m.Dispatch.Inc("set")
			}
			if dc := in.opCounts; dc != nil {
				dc.Set++
			}
			nv := normFloat(regs[ins.b])
			if err := in.setScalarRef(&p.vrefs[ins.a], p.names[ins.a], nv); err != nil {
				return Value{}, "set", err
			}
			return nv, "set", nil

		case opIncr:
			if in.specialGen != in.specialBase {
				return in.execGenericFallback(c)
			}
			if m := in.obs; m != nil {
				m.Dispatch.Inc("incr")
			}
			if dc := in.opCounts; dc != nil {
				dc.Incr++
			}
			v, err := in.incrRef(&p.vrefs[ins.a], p.names[ins.a], int64(ins.b))
			if err != nil {
				return Value{}, "incr", err
			}
			return v, "incr", nil

		case opExpr:
			if in.specialGen != in.specialBase {
				return in.execGenericFallback(c)
			}
			if m := in.obs; m != nil {
				m.Dispatch.Inc("expr")
			}
			if dc := in.opCounts; dc != nil {
				dc.Expr++
			}
			ev := in.acquireEval()
			v, err := p.exprs[ins.a].eval(ev)
			in.releaseEval(ev)
			if err != nil {
				return Value{}, "expr", err
			}
			return normFloat(v), "expr", nil

		case opExprTmpl:
			if in.specialGen != in.specialBase {
				return in.execGenericFallback(c)
			}
			if dc := in.opCounts; dc != nil {
				dc.ExprTmpl++
			}
			return in.execExprTmpl(p.tmpls[ins.a], c)

		case opWhile:
			// Mirrors cmdWhile exactly, minus the per-invocation script
			// parse and the per-iteration expression-cache lookups.
			if in.specialGen != in.specialBase {
				return in.execGenericFallback(c)
			}
			if m := in.obs; m != nil {
				m.Dispatch.Inc("while")
			}
			if dc := in.opCounts; dc != nil {
				dc.While++
			}
			return Value{}, "while", in.runWhile(&p.loops[ins.a])

		case opFor:
			// Mirrors cmdFor, including Tcl_ForObjCmd's rule that a
			// break raised by the next script terminates the loop.
			if in.specialGen != in.specialBase {
				return in.execGenericFallback(c)
			}
			if m := in.obs; m != nil {
				m.Dispatch.Inc("for")
			}
			if dc := in.opCounts; dc != nil {
				dc.For++
			}
			return Value{}, "for", in.runFor(&p.loops[ins.a])
		}
	}
	// Unreachable: every non-empty command ends in a dispatch
	// instruction.
	return Value{}, "", nil
}

// execGenericFallback runs a command whose specialized opcode has been
// invalidated (set/incr/expr was rebound) through the full
// substitute-and-dispatch path.
func (in *Interp) execGenericFallback(c *progCmd) (Value, string, error) {
	argv, err := in.substWords(c.src.words)
	if err != nil {
		return Value{}, "", err
	}
	if len(argv) == 0 {
		return Value{}, "", nil
	}
	res, err := in.invoke(argv)
	return strVal(res), argv[0], err
}

// execExprTmpl evaluates a compiled expr template: fetch every slot
// variable, verify each value is a pure numeric literal, then run the
// typed AST. Any impurity — a missing variable, an array, a value the
// expression lexer would not scan as exactly one number — bails to the
// classic join-and-parse path, which is the defining semantics.
func (in *Interp) execExprTmpl(t *exprTemplate, c *progCmd) (Value, string, error) {
	slots := in.tmplSlots[:0]
	for si, name := range t.vars {
		rv, ok := in.cachedScalar(&t.refs[si], name)
		if !ok {
			in.tmplSlots = slots[:0]
			return in.execExprTmplBail(c)
		}
		v := rv.val
		if v.kind == vInt {
			// Ints are always pure (see pureOperandValue); inlined
			// because this is the hot case of numeric loops.
			slots = append(slots, Value{kind: vInt, i: v.i})
			continue
		}
		pv, ok := pureOperandValue(v)
		if !ok {
			in.tmplSlots = slots[:0]
			return in.execExprTmplBail(c)
		}
		slots = append(slots, pv)
	}
	in.tmplSlots = slots[:0]
	if t.fastOp != "" {
		if a, b := slots[t.fastL], slots[t.fastR]; a.kind == vInt && b.kind == vInt {
			if r, ok := intBinaryFast(t.fastOp, a.i, b.i); ok {
				if m := in.obs; m != nil {
					m.Dispatch.Inc("expr")
				}
				return r, "expr", nil
			}
		}
	}
	if m := in.obs; m != nil {
		m.Dispatch.Inc("expr")
	}
	ev := in.acquireEval()
	ev.slots = slots
	v, err := t.node.eval(ev)
	in.releaseEval(ev)
	if err != nil {
		return Value{}, "expr", err
	}
	return normFloat(v), "expr", nil
}

// execExprTmplBail is the template's escape hatch: substitute the
// original words and evaluate like cmdExpr. A substitution failure is
// reported as such (no traceback entry), matching the tree walker's
// ordering where substitution precedes dispatch.
func (in *Interp) execExprTmplBail(c *progCmd) (Value, string, error) {
	argv, err := in.substWords(c.src.words)
	if err != nil {
		return Value{}, "", err
	}
	if m := in.obs; m != nil {
		m.Dispatch.Inc("expr")
	}
	res, err := in.ExprEval(strings.Join(argv[1:], " "))
	if err != nil {
		return Value{}, "expr", err
	}
	return strVal(res), "expr", nil
}

// pureOperandValue prepares a variable's value for use as a template
// slot. The fast cases are machine numbers with no divergent string
// form; anything carrying a string is re-scanned with the expression
// lexer (pureNumberValue) so the slot holds exactly the value the
// classic substitute-then-parse evaluation would have produced.
func pureOperandValue(v Value) (Value, bool) {
	if v.kind == vInt {
		// Ints are always pure: a cached spelling, if any, is canonical
		// (see Value.s), so the machine value is exactly what the
		// classic substitute-then-rescan path would have produced.
		return Value{kind: vInt, i: v.i}, true
	}
	if v.s == "" {
		switch v.kind {
		case vFloat:
			// Normalize through the string round trip first: classic
			// evaluation would have substituted the formatted text.
			nv := normFloat(v)
			if nv.kind == vFloat {
				return Value{kind: vFloat, f: nv.f}, true
			}
			return pureNumberValue(nv.String())
		}
		// Zero value: the empty string, never a pure number.
		return Value{}, false
	}
	return pureNumberValue(v.s)
}

// acquireRegs grabs a register window from the pool (or allocates
// one). Windows are stack-disciplined — nested execScript calls
// acquire after their caller and release before it — so a small LIFO
// pool eliminates steady-state allocation.
func (in *Interp) acquireRegs(n int) []Value {
	for k := len(in.regPool); k > 0; k-- {
		r := in.regPool[k-1]
		in.regPool = in.regPool[:k-1]
		if cap(r) >= n {
			return r[:n]
		}
		// Too small to be useful; drop it and try the next.
	}
	if n < 8 {
		return make([]Value, n, 8)
	}
	return make([]Value, n)
}

// acquireArgv grabs an argv buffer for one command invocation from a
// LIFO pool. Sound because no command retains its argv slice past its
// return (the values are Go strings, which callees copy by header and
// which outlive the buffer): the buffer is reused only after the
// invocation completes, and nested invocations acquire and release in
// stack order.
func (in *Interp) acquireArgv(n int) []string {
	for k := len(in.argvPool); k > 0; k-- {
		a := in.argvPool[k-1]
		in.argvPool = in.argvPool[:k-1]
		if cap(a) >= n {
			return a[:n]
		}
	}
	if n < 8 {
		return make([]string, n, 8)
	}
	return make([]string, n)
}

func (in *Interp) releaseArgv(a []string) {
	for i := range a {
		a[i] = ""
	}
	if len(in.argvPool) < 32 {
		in.argvPool = append(in.argvPool, a)
	}
}

func (in *Interp) releaseRegs(r []Value) {
	for i := range r {
		r[i] = Value{} // drop string references
	}
	if len(in.regPool) < 32 {
		in.regPool = append(in.regPool, r)
	}
}

// runWhile is the body of opWhile: cmdWhile's exact control flow, with
// the condition evaluated as a pre-compiled typed AST (the same
// evaluation ExprBool performs after its cache lookup) and one
// evaluator reused across iterations.
func (in *Interp) runWhile(li *loopInfo) error {
	ev := in.acquireEval()
	defer in.releaseEval(ev)
	for {
		v, err := li.cond.eval(ev)
		if err != nil {
			return err
		}
		ok, err := v.asBool()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if _, err := in.execLoopScript(&li.body); err != nil {
			var te *Error
			if asTclError(err, &te) {
				if te.Code == CodeBreak {
					return nil
				}
				if te.Code == CodeContinue {
					continue
				}
			}
			return err
		}
	}
}

// runFor is the body of opFor: cmdFor's exact control flow, including
// Tcl_ForObjCmd's rule that a break raised by the next script
// terminates the loop.
func (in *Interp) runFor(li *loopInfo) error {
	if _, err := in.execLoopScript(&li.init); err != nil {
		return err
	}
	ev := in.acquireEval()
	defer in.releaseEval(ev)
	for {
		v, err := li.cond.eval(ev)
		if err != nil {
			return err
		}
		ok, err := v.asBool()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if _, err := in.execLoopScript(&li.body); err != nil {
			var te *Error
			if asTclError(err, &te) {
				if te.Code == CodeBreak {
					return nil
				}
				if te.Code != CodeContinue {
					return err
				}
			} else {
				return err
			}
		}
		if _, err := in.execLoopScript(&li.next); err != nil {
			var te *Error
			if asTclError(err, &te) && te.Code == CodeBreak {
				return nil
			}
			return err
		}
	}
}

// execLoopScript is evalScriptV for a loop's pre-compiled script: the
// same nesting bookkeeping, minus the Program cache lookup (the loop
// compiler resolved it once). Loops only run at nesting >= 1, so the
// top-level instrumentation branch of evalScriptV cannot apply, and
// the nesting==1 traceback reset in evalScriptBody cannot fire.
func (in *Interp) execLoopScript(ls *loopScript) (Value, error) {
	in.nesting++
	defer func() { in.nesting-- }()
	if in.nesting > in.maxNesting {
		return Value{}, NewError("too many nested calls to Eval (infinite loop?)")
	}
	if in.engine == EngineBytecode && in.prof == nil {
		return in.execProgram(ls.prog, ls.script)
	}
	return in.treeExec(ls.script, 0, Value{})
}

// acquireEval grabs a pooled exprEvaluator. Evaluations nest (a
// bracketed command inside an expression can itself evaluate
// expressions), so this is a free list rather than a single scratch
// slot.
func (in *Interp) acquireEval() *exprEvaluator {
	if n := len(in.evPool); n > 0 {
		ev := in.evPool[n-1]
		in.evPool = in.evPool[:n-1]
		return ev
	}
	return &exprEvaluator{in: in}
}

func (in *Interp) releaseEval(ev *exprEvaluator) {
	ev.slots = nil
	ev.skipDepth = 0
	if len(in.evPool) < 16 {
		in.evPool = append(in.evPool, ev)
	}
}
