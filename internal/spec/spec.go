// Package spec implements Wafe's code generator: it parses the high-
// level specification language shown in the paper and emits (a) Go
// binding source performing argument conversion, error messages and
// command registration, and (b) the short reference guide (plain text
// and TeX). In the original system this generator was a Perl program
// producing about 60 % of Wafe's 13 000 lines of C.
package spec

import (
	"fmt"
	"strings"
)

// Entry is one specification unit: a widget class or a function.
type Entry struct {
	// Kind is "widgetClass" or "function".
	Kind string

	// Widget-class entries (paper example: "~widgetClass\nXmCascadeButton\n#include <Xm/CascadeB.h>").
	ClassName string
	Includes  []string

	// Function entries (paper example: "void\nXmCascadeButtonHighlight\nin: Widget\nin: Boolean").
	ReturnType string
	CName      string
	Params     []Param

	// Doc is an optional comment attached with leading "." lines.
	Doc string
}

// Param is one typed parameter with a direction.
type Param struct {
	Dir  string // "in" or "out"
	Type string // Widget, Boolean, Int, String, Callback, VarName, ...
}

// CommandName derives the Wafe command name for the entry using the
// paper's naming rule.
func (e *Entry) CommandName() string {
	switch e.Kind {
	case "widgetClass":
		return creationName(e.ClassName)
	case "function":
		return commandName(e.CName)
	}
	return ""
}

// These mirror internal/core's naming rules; duplicated here so the
// generator stays dependency-free (it must also run standalone as
// cmd/wafegen).
func commandName(c string) string {
	for _, p := range []string{"Xaw", "Xt", "Xm", "X"} {
		if strings.HasPrefix(c, p) && len(c) > len(p) && c[len(p)] >= 'A' && c[len(p)] <= 'Z' {
			if p == "Xm" {
				return "m" + c[2:]
			}
			return lowerFirst(c[len(p):])
		}
	}
	return lowerFirst(c)
}

func creationName(c string) string {
	if strings.HasPrefix(c, "Xm") && len(c) > 2 {
		return "m" + c[2:]
	}
	return lowerFirst(c)
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'A' && b[0] <= 'Z' {
		b[0] += 32
	}
	return string(b)
}

// Parse reads a specification file. Entries are separated by blank
// lines. A unit starting with "~widgetClass" declares a widget class;
// a unit whose first line is a C type declares a function. Lines
// starting with "!" are comments; lines starting with "." attach
// documentation to the following entry.
func Parse(src string) ([]Entry, error) {
	var entries []Entry
	blocks := splitBlocks(src)
	for _, block := range blocks {
		e, err := parseBlock(block)
		if err != nil {
			return nil, err
		}
		if e != nil {
			entries = append(entries, *e)
		}
	}
	return entries, nil
}

func splitBlocks(src string) [][]string {
	var blocks [][]string
	var cur []string
	for _, raw := range strings.Split(src, "\n") {
		line := strings.TrimRight(raw, " \t")
		if strings.TrimSpace(line) == "" {
			if len(cur) > 0 {
				blocks = append(blocks, cur)
				cur = nil
			}
			continue
		}
		cur = append(cur, line)
	}
	if len(cur) > 0 {
		blocks = append(blocks, cur)
	}
	return blocks
}

func parseBlock(lines []string) (*Entry, error) {
	var doc []string
	i := 0
	for i < len(lines) {
		l := strings.TrimSpace(lines[i])
		switch {
		case strings.HasPrefix(l, "!"):
			i++
		case strings.HasPrefix(l, "."):
			doc = append(doc, strings.TrimSpace(strings.TrimPrefix(l, ".")))
			i++
		default:
			goto body
		}
	}
	return nil, nil // comment-only block
body:
	rest := lines[i:]
	e := &Entry{Doc: strings.Join(doc, " ")}
	if strings.TrimSpace(rest[0]) == "~widgetClass" {
		e.Kind = "widgetClass"
		if len(rest) < 2 {
			return nil, fmt.Errorf("spec: ~widgetClass without class name")
		}
		e.ClassName = strings.TrimSpace(rest[1])
		if e.ClassName == "" || strings.ContainsAny(e.ClassName, " \t") {
			return nil, fmt.Errorf("spec: bad widget class name %q", rest[1])
		}
		for _, l := range rest[2:] {
			t := strings.TrimSpace(l)
			if strings.HasPrefix(t, "#include") {
				e.Includes = append(e.Includes, strings.TrimSpace(strings.TrimPrefix(t, "#include")))
			} else {
				return nil, fmt.Errorf("spec: unexpected line %q in widgetClass block", l)
			}
		}
		return e, nil
	}
	// Function block: return type, C name, parameter lines.
	e.Kind = "function"
	e.ReturnType = strings.TrimSpace(rest[0])
	if len(rest) < 2 {
		return nil, fmt.Errorf("spec: function block %q missing name", rest[0])
	}
	e.CName = strings.TrimSpace(rest[1])
	if e.CName == "" || strings.ContainsAny(e.CName, " \t(") {
		return nil, fmt.Errorf("spec: bad function name %q", rest[1])
	}
	for _, l := range rest[2:] {
		t := strings.TrimSpace(l)
		colon := strings.IndexByte(t, ':')
		if colon < 0 {
			return nil, fmt.Errorf("spec: bad parameter line %q in %s", l, e.CName)
		}
		dir := strings.TrimSpace(t[:colon])
		typ := strings.TrimSpace(t[colon+1:])
		if dir != "in" && dir != "out" {
			return nil, fmt.Errorf("spec: bad parameter direction %q in %s", dir, e.CName)
		}
		if typ == "" {
			return nil, fmt.Errorf("spec: empty parameter type in %s", e.CName)
		}
		e.Params = append(e.Params, Param{Dir: dir, Type: typ})
	}
	return e, nil
}

// Stats summarizes generation output for the paper's "about 60 % of
// the code is generated" measurement.
type Stats struct {
	Entries        int
	WidgetClasses  int
	Functions      int
	GeneratedLines int
}
