package spec

import (
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// paperClassExample is the first specification sample printed in the
// paper.
const paperClassExample = `~widgetClass
XmCascadeButton
#include <Xm/CascadeB.h>
`

// paperFuncExample is the second sample: a two-argument function.
const paperFuncExample = `void
XmCascadeButtonHighlight
in: Widget
in: Boolean
`

func TestParsePaperClassExample(t *testing.T) {
	entries, err := Parse(paperClassExample)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[0]
	if e.Kind != "widgetClass" || e.ClassName != "XmCascadeButton" {
		t.Errorf("entry = %+v", e)
	}
	if len(e.Includes) != 1 || e.Includes[0] != "<Xm/CascadeB.h>" {
		t.Errorf("includes = %v", e.Includes)
	}
	// "The specification ... suffices to provide a mCascadeButton
	// command in Wafe."
	if e.CommandName() != "mCascadeButton" {
		t.Errorf("command = %q", e.CommandName())
	}
}

func TestParsePaperFuncExample(t *testing.T) {
	entries, err := Parse(paperFuncExample)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d", len(entries))
	}
	e := entries[0]
	if e.Kind != "function" || e.CName != "XmCascadeButtonHighlight" || e.ReturnType != "void" {
		t.Errorf("entry = %+v", e)
	}
	if len(e.Params) != 2 || e.Params[0].Type != "Widget" || e.Params[1].Type != "Boolean" {
		t.Errorf("params = %+v", e.Params)
	}
	// "The specification below creates the Wafe command
	// mCascadeButtonHighlight with two input arguments."
	if e.CommandName() != "mCascadeButtonHighlight" {
		t.Errorf("command = %q", e.CommandName())
	}
}

func TestParseCommentsAndDocs(t *testing.T) {
	entries, err := Parse(`! a comment block

. Documentation line.
void
XtPopdown
in: Widget
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Doc != "Documentation line." {
		t.Errorf("entries = %+v", entries)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"~widgetClass",                      // missing name
		"void\nXtFoo(\nin: Widget",          // paren in name
		"void\nXtFoo\nsideways: Widget",     // bad direction
		"void\nXtFoo\nin:",                  // empty type
		"~widgetClass\nFoo\nnot-an-include", // junk in class block
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestGenerateGoCompilesSyntactically(t *testing.T) {
	entries, err := Parse(paperClassExample + "\n" + paperFuncExample)
	if err != nil {
		t.Fatal(err)
	}
	src, st := GenerateGo("bindings", entries)
	if st.WidgetClasses != 1 || st.Functions != 1 {
		t.Errorf("stats = %+v", st)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated code does not parse: %v\n%s", err, src)
	}
	// Generated function implements arity checking and dispatch.
	if !strings.Contains(src, "CreateWidgetClass(\"XmCascadeButton\"") {
		t.Error("widget dispatch missing")
	}
	if !strings.Contains(src, "CallFunction(\"XmCascadeButtonHighlight\"") {
		t.Error("function dispatch missing")
	}
	if !strings.Contains(src, "wrong # args") {
		t.Error("arity error messages missing")
	}
}

func TestFullSpecFile(t *testing.T) {
	data, err := os.ReadFile("../../specs/wafe.spec")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := Parse(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 50 {
		t.Errorf("spec has only %d entries", len(entries))
	}
	src, st := GenerateGo("bindings", entries)
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("full generated code does not parse: %v", err)
	}
	if st.GeneratedLines < 500 {
		t.Errorf("generated only %d lines", st.GeneratedLines)
	}
	// Spot-check naming-rule outputs from the paper.
	for _, want := range []string{"destroyWidget", "formAllowResize", "mCommandAppendValue", "toggle", "mCascadeButton", "asciiText"} {
		found := false
		for _, e := range entries {
			if e.CommandName() == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("spec missing command %q", want)
		}
	}
}

func TestGenerateReference(t *testing.T) {
	entries, _ := Parse(paperClassExample + "\n" + paperFuncExample)
	ref := GenerateReference(entries)
	if !strings.Contains(ref, "mCascadeButton Name Father") {
		t.Errorf("reference missing creation command:\n%s", ref)
	}
	if !strings.Contains(ref, "mCascadeButtonHighlight widget boolean") {
		t.Errorf("reference missing function:\n%s", ref)
	}
	tex := GenerateTeX(entries)
	if !strings.Contains(tex, "\\section*{Wafe Short Reference}") {
		t.Error("TeX preamble missing")
	}
	if !strings.Contains(tex, "XmCascadeButtonHighlight") {
		t.Error("TeX body missing function")
	}
}

func TestNamingRuleAgreement(t *testing.T) {
	// The generator's private naming copy must follow the same rule as
	// the runtime (internal/core); checked on the documented examples.
	cases := map[string]string{
		"XtDestroyWidget":      "destroyWidget",
		"XawFormAllowResize":   "formAllowResize",
		"XmCommandAppendValue": "mCommandAppendValue",
	}
	for in, want := range cases {
		if got := commandName(in); got != want {
			t.Errorf("commandName(%q) = %q, want %q", in, got, want)
		}
	}
}
