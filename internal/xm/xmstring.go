// Package xm implements the OSF/Motif widget subset Wafe's Motif build
// (mofe) exposes: compound strings (XmString) with font and writing-
// direction segments, a font list with tags, and the m-prefixed widget
// classes the paper's examples use (XmLabel, XmPushButton,
// XmCascadeButton, XmRowColumn, XmText, XmCommand).
package xm

import (
	"fmt"
	"strings"
)

// Segment is one run of an XmString: text rendered with one font tag in
// one writing direction.
type Segment struct {
	Text      string
	FontTag   string // "" = default tag (first entry of the font list)
	Direction string // "ltr" (default) or "rtl"
}

// XmString is Motif's compound string.
type XmString struct {
	Segments []Segment
	source   string
}

// Source returns the original Wafe-syntax string.
func (s *XmString) Source() string {
	if s == nil {
		return ""
	}
	return s.source
}

// PlainText concatenates the segment texts (rtl segments reversed, as
// they would render).
func (s *XmString) PlainText() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	for _, seg := range s.Segments {
		if seg.Direction == "rtl" {
			r := []rune(seg.Text)
			for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
				r[i], r[j] = r[j], r[i]
			}
			b.WriteString(string(r))
			continue
		}
		b.WriteString(seg.Text)
	}
	return b.String()
}

// FontList maps tags to font name patterns, parsed from the Motif
// fontList resource syntax the paper shows:
//
//	*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft
type FontList struct {
	Entries []FontListEntry
	source  string
}

// FontListEntry is one pattern=tag pair.
type FontListEntry struct {
	Pattern string
	Tag     string
}

// Source returns the original resource string.
func (fl *FontList) Source() string {
	if fl == nil {
		return ""
	}
	return fl.source
}

// Lookup resolves a tag to its font pattern; ok is false for unknown
// tags.
func (fl *FontList) Lookup(tag string) (string, bool) {
	if fl == nil {
		return "", false
	}
	for _, e := range fl.Entries {
		if e.Tag == tag {
			return e.Pattern, true
		}
	}
	return "", false
}

// DefaultTag returns the first tag in the list ("" when empty).
func (fl *FontList) DefaultTag() string {
	if fl == nil || len(fl.Entries) == 0 {
		return ""
	}
	return fl.Entries[0].Tag
}

// Tags returns all known tags.
func (fl *FontList) Tags() []string {
	if fl == nil {
		return nil
	}
	out := make([]string, 0, len(fl.Entries))
	for _, e := range fl.Entries {
		out = append(out, e.Tag)
	}
	return out
}

// ParseFontList parses "pattern=tag,pattern=tag". A pattern without
// "=tag" gets the empty (default) tag.
func ParseFontList(src string) (*FontList, error) {
	fl := &FontList{source: src}
	for _, part := range strings.Split(src, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.LastIndexByte(part, '=')
		if eq < 0 {
			fl.Entries = append(fl.Entries, FontListEntry{Pattern: part})
			continue
		}
		tag := strings.TrimSpace(part[eq+1:])
		pat := strings.TrimSpace(part[:eq])
		if pat == "" {
			return nil, fmt.Errorf("xm: empty font pattern in fontList entry %q", part)
		}
		fl.Entries = append(fl.Entries, FontListEntry{Pattern: pat, Tag: tag})
	}
	if len(fl.Entries) == 0 {
		return nil, fmt.Errorf("xm: empty fontList %q", src)
	}
	return fl, nil
}

// ParseXmString parses Wafe's compound-string syntax: plain text with
// "\tag" layout commands, where tag is either a font tag from the font
// list or a direction keyword ("rl" = right-to-left, "lr" =
// left-to-right). The paper's example:
//
//	"I'm\bft bold\ft and\rl strange"
//
// renders "I'm" in ft, " bold" in bft, " and" back in ft, and
// " strange" right-to-left.
func ParseXmString(src string, fl *FontList) (*XmString, error) {
	xs := &XmString{source: src}
	curTag := fl.DefaultTag()
	curDir := "ltr"
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			xs.Segments = append(xs.Segments, Segment{Text: text.String(), FontTag: curTag, Direction: curDir})
			text.Reset()
		}
	}
	i := 0
	for i < len(src) {
		c := src[i]
		if c != '\\' {
			text.WriteByte(c)
			i++
			continue
		}
		// Layout command: read the tag word.
		j := i + 1
		for j < len(src) && isTagChar(src[j]) {
			j++
		}
		word := src[i+1 : j]
		if word == "" {
			// Literal backslash.
			text.WriteByte('\\')
			i++
			continue
		}
		switch {
		case word == "rl":
			flush()
			curDir = "rtl"
		case word == "lr":
			flush()
			curDir = "ltr"
		default:
			if _, ok := fl.Lookup(word); !ok {
				return nil, fmt.Errorf("xm: compound string %q references unknown font tag %q", src, word)
			}
			flush()
			curTag = word
		}
		i = j
	}
	flush()
	return xs, nil
}

func isTagChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
