package xm

import (
	"strings"
	"testing"

	"wafe/internal/xt"
)

func newApp(t *testing.T) (*xt.App, *xt.Widget) {
	t.Helper()
	app := xt.NewTestApp("mofe")
	RegisterConverters(app)
	top, err := app.CreateWidget("topLevel", xt.ApplicationShellClass, nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	return app, top
}

func TestParseFontList(t *testing.T) {
	// The paper's Figure 3 fontList.
	fl, err := ParseFontList("*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft")
	if err != nil {
		t.Fatal(err)
	}
	if len(fl.Entries) != 2 {
		t.Fatalf("entries = %d", len(fl.Entries))
	}
	if pat, ok := fl.Lookup("bft"); !ok || !strings.Contains(pat, "bold") {
		t.Errorf("bft → %q, %v", pat, ok)
	}
	if fl.DefaultTag() != "ft" {
		t.Errorf("default tag = %q", fl.DefaultTag())
	}
	if _, ok := fl.Lookup("nope"); ok {
		t.Error("unknown tag should fail")
	}
	if _, err := ParseFontList(""); err == nil {
		t.Error("empty fontList must fail")
	}
}

// TestParseXmStringFigure3 parses the paper's compound string example.
func TestParseXmStringFigure3(t *testing.T) {
	fl, _ := ParseFontList("*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft")
	xs, err := ParseXmString(`I'm\bft bold\ft and\rl strange`, fl)
	if err != nil {
		t.Fatal(err)
	}
	want := []Segment{
		{Text: "I'm", FontTag: "ft", Direction: "ltr"},
		{Text: " bold", FontTag: "bft", Direction: "ltr"},
		{Text: " and", FontTag: "ft", Direction: "ltr"},
		{Text: " strange", FontTag: "ft", Direction: "rtl"},
	}
	if len(xs.Segments) != len(want) {
		t.Fatalf("segments = %+v", xs.Segments)
	}
	for i, seg := range xs.Segments {
		if seg != want[i] {
			t.Errorf("segment %d = %+v, want %+v", i, seg, want[i])
		}
	}
	// Right-to-left text renders reversed.
	if !strings.HasSuffix(xs.PlainText(), "egnarts ") {
		t.Errorf("plain text = %q", xs.PlainText())
	}
}

func TestParseXmStringUnknownTag(t *testing.T) {
	fl, _ := ParseFontList("fixed=ft")
	if _, err := ParseXmString(`x\nosuchtag y`, fl); err == nil {
		t.Error("unknown tag must fail")
	}
}

func TestXmLabelWidget(t *testing.T) {
	app, top := newApp(t)
	l, err := app.CreateWidget("l", XmLabelClass, top, map[string]string{
		"fontList":    "*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft",
		"labelString": `I'm\bft bold\ft and\rl strange`,
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	xs := LabelXmString(l)
	if xs == nil || len(xs.Segments) != 4 {
		t.Fatalf("labelString = %+v", xs)
	}
	// Readable back through gV.
	src, err := l.GetValue("labelString")
	if err != nil || src != `I'm\bft bold\ft and\rl strange` {
		t.Errorf("gV labelString = %q, %v", src, err)
	}
	top.Realize()
	app.Pump()
	texts := l.Display().StringsDrawn(l.Window())
	joined := strings.Join(texts, "|")
	if !strings.Contains(joined, " bold") || !strings.Contains(joined, "egnarts") {
		t.Errorf("drawn = %q", joined)
	}
}

func TestXmPushButtonProtocol(t *testing.T) {
	app, top := newApp(t)
	b, _ := app.CreateWidget("pressMe", XmPushButtonClass, top, nil, true)
	var seq []string
	for _, cb := range []string{"armCallback", "activateCallback", "disarmCallback"} {
		name := cb
		_ = b.AddCallback(name, xt.Callback{Proc: func(*xt.Widget, xt.CallData) { seq = append(seq, name) }})
	}
	top.Realize()
	app.Pump()
	d := b.Display()
	win, _ := d.Lookup(b.Window())
	x, y := win.RootCoords(2, 2)
	d.WarpPointer(x, y)
	d.InjectButtonPress(1)
	d.InjectButtonRelease(1)
	app.Pump()
	if strings.Join(seq, ",") != "armCallback,activateCallback,disarmCallback" {
		t.Errorf("sequence = %v", seq)
	}
}

func TestCascadeButtonHighlight(t *testing.T) {
	app, top := newApp(t)
	cb, _ := app.CreateWidget("casc", XmCascadeButtonClass, top, nil, true)
	top.Realize()
	CascadeButtonHighlight(cb, true)
	if !CascadeButtonHighlighted(cb) {
		t.Error("highlight not set")
	}
	CascadeButtonHighlight(cb, false)
	if CascadeButtonHighlighted(cb) {
		t.Error("highlight not cleared")
	}
}

func TestRowColumnLayout(t *testing.T) {
	app, top := newApp(t)
	rc, _ := app.CreateWidget("rc", XmRowColumnClass, top, map[string]string{"orientation": "horizontal"}, true)
	a, _ := app.CreateWidget("a", XmLabelClass, rc, nil, true)
	b, _ := app.CreateWidget("b", XmLabelClass, rc, nil, true)
	top.Realize()
	app.Pump()
	if b.Int("x") <= a.Int("x") {
		t.Errorf("horizontal rowcolumn: a.x=%d b.x=%d", a.Int("x"), b.Int("x"))
	}
}

func TestXmTextEditing(t *testing.T) {
	app, top := newApp(t)
	txt, _ := app.CreateWidget("t", XmTextClass, top, nil, true)
	var activated string
	_ = txt.AddCallback("activateCallback", xt.Callback{Proc: func(w *xt.Widget, d xt.CallData) {
		activated = d["value"]
	}})
	top.Realize()
	app.Pump()
	d := txt.Display()
	d.SetInputFocus(txt.Window())
	_ = d.TypeString("hello")
	app.Pump()
	if txt.Str("value") != "hello" {
		t.Errorf("value = %q", txt.Str("value"))
	}
	_ = d.TypeString("\r")
	app.Pump()
	if activated != "hello" {
		t.Errorf("activate value = %q", activated)
	}
}

func TestXmCommand(t *testing.T) {
	app, top := newApp(t)
	cmd, _ := app.CreateWidget("c", XmCommandClass, top, nil, true)
	var entered string
	_ = cmd.AddCallback("commandEnteredCallback", xt.Callback{Proc: func(w *xt.Widget, d xt.CallData) {
		entered = d["value"]
	}})
	CommandAppendValue(cmd, "ls ")
	CommandAppendValue(cmd, "-l")
	if cmd.Str("value") != "ls -l" {
		t.Errorf("value = %q", cmd.Str("value"))
	}
	CommandExecute(cmd)
	if entered != "ls -l" {
		t.Errorf("entered = %q", entered)
	}
	hist := cmd.StringList("historyItems")
	if len(hist) != 1 || hist[0] != "ls -l" {
		t.Errorf("history = %v", hist)
	}
	if cmd.Str("value") != "" {
		t.Error("value not cleared after execute")
	}
}

func TestHistoryLimit(t *testing.T) {
	app, top := newApp(t)
	cmd, _ := app.CreateWidget("c", XmCommandClass, top, map[string]string{"historyMaxItems": "3"}, true)
	for _, s := range []string{"a", "b", "c", "d"} {
		cmd.SetResourceValue("value", s)
		CommandExecute(cmd)
	}
	hist := cmd.StringList("historyItems")
	if len(hist) != 3 || hist[0] != "b" {
		t.Errorf("history = %v", hist)
	}
}

func TestXmLabelPreferredSizeTracksSegments(t *testing.T) {
	app, top := newApp(t)
	l, _ := app.CreateWidget("sz", XmLabelClass, top, map[string]string{
		"fontList":    "fixed=ft,9x15=big",
		"labelString": `aa\big bbb`,
	}, true)
	pw, ph := l.PreferredSize()
	// 2 chars in fixed (6px) + 4 chars in 9x15 (9px) + margins (2*2) +
	// shadows (2*2).
	wantW := 2*6 + 4*9 + 4 + 4
	if pw != wantW {
		t.Errorf("preferred width = %d, want %d", pw, wantW)
	}
	// Height follows the tallest font (9x15 → 15) plus margins/shadows.
	if ph != 15+4+4 {
		t.Errorf("preferred height = %d", ph)
	}
}

func TestXmLabelDefaultsToName(t *testing.T) {
	app, top := newApp(t)
	l, _ := app.CreateWidget("unnamed", XmLabelClass, top, nil, true)
	xs := LabelXmString(l)
	if xs == nil || xs.PlainText() != "unnamed" {
		t.Errorf("default labelString = %+v", xs)
	}
}

func TestXmTextBackspaceAndLimits(t *testing.T) {
	app, top := newApp(t)
	txt, _ := app.CreateWidget("bs", XmTextClass, top, nil, true)
	var changes int
	_ = txt.AddCallback("valueChangedCallback", xt.Callback{Proc: func(*xt.Widget, xt.CallData) { changes++ }})
	top.Realize()
	app.Pump()
	d := txt.Display()
	d.SetInputFocus(txt.Window())
	_ = d.TypeString("ab")
	app.Pump()
	bs, _ := d.Keymap().KeycodeFor("BackSpace")
	d.InjectKeycode(bs, true)
	d.InjectKeycode(bs, false)
	app.Pump()
	if txt.Str("value") != "a" {
		t.Errorf("value = %q", txt.Str("value"))
	}
	// Backspace on empty is a no-op.
	d.InjectKeycode(bs, true)
	d.InjectKeycode(bs, false)
	d.InjectKeycode(bs, true)
	d.InjectKeycode(bs, false)
	app.Pump()
	if txt.Str("value") != "" {
		t.Errorf("value = %q", txt.Str("value"))
	}
	if changes < 3 {
		t.Errorf("valueChangedCallback fired %d times", changes)
	}
	// Non-editable text ignores keys.
	_ = txt.SetValues(map[string]string{"editable": "false", "value": "locked"})
	_ = d.TypeString("x")
	app.Pump()
	if txt.Str("value") != "locked" {
		t.Errorf("read-only value = %q", txt.Str("value"))
	}
}

func TestXmPushButtonActivateNeedsArm(t *testing.T) {
	app, top := newApp(t)
	b, _ := app.CreateWidget("noarm", XmPushButtonClass, top, nil, true)
	fired := false
	_ = b.AddCallback("activateCallback", xt.Callback{Proc: func(*xt.Widget, xt.CallData) { fired = true }})
	top.Realize()
	app.Pump()
	// A release without a preceding press (arm) must not activate.
	d := b.Display()
	win, _ := d.Lookup(b.Window())
	x, y := win.RootCoords(2, 2)
	d.WarpPointer(x, y)
	d.InjectButtonRelease(1)
	app.Pump()
	if fired {
		t.Error("activate without arm")
	}
}

func TestVerticalRowColumn(t *testing.T) {
	app, top := newApp(t)
	rc, _ := app.CreateWidget("vrc", XmRowColumnClass, top, nil, true)
	a, _ := app.CreateWidget("va", XmLabelClass, rc, nil, true)
	b, _ := app.CreateWidget("vb", XmLabelClass, rc, nil, true)
	top.Realize()
	app.Pump()
	if b.Int("y") <= a.Int("y") {
		t.Errorf("vertical rowcolumn: a.y=%d b.y=%d", a.Int("y"), b.Int("y"))
	}
	if a.Int("x") != b.Int("x") {
		t.Error("columns misaligned")
	}
}

func TestAllClassesCreatable(t *testing.T) {
	app, top := newApp(t)
	for i, c := range AllClasses() {
		name := "m" + string(rune('a'+i))
		if _, err := app.CreateWidget(name, c, top, nil, true); err != nil {
			t.Errorf("create %s: %v", c.Name, err)
		}
	}
	top.Realize()
	app.Pump()
}
