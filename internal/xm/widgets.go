package xm

import (
	"strings"

	"wafe/internal/xproto"
	"wafe/internal/xt"
)

// XmPrimitiveClass is the Motif primitive base class.
var XmPrimitiveClass = &xt.Class{
	Name:  "XmPrimitive",
	Super: xt.CoreClass,
	Resources: []xt.Resource{
		{Name: "foreground", Class: "Foreground", Type: xt.TPixel, Default: "XtDefaultForeground"},
		{Name: "shadowThickness", Class: "ShadowThickness", Type: xt.TDimension, Default: "2"},
		{Name: "highlightThickness", Class: "HighlightThickness", Type: xt.TDimension, Default: "2"},
		{Name: "topShadowColor", Class: "TopShadowColor", Type: xt.TPixel, Default: "gray90"},
		{Name: "bottomShadowColor", Class: "BottomShadowColor", Type: xt.TPixel, Default: "gray50"},
		{Name: "traversalOn", Class: "TraversalOn", Type: xt.TBoolean, Default: "True"},
	},
}

// XmLabelClass renders a compound string (labelString) with a fontList.
var XmLabelClass = &xt.Class{
	Name:  "XmLabel",
	Super: XmPrimitiveClass,
	Resources: []xt.Resource{
		// fontList precedes labelString: the XmString converter needs
		// the font list to resolve tags, and resources initialize in
		// declaration order.
		{Name: "fontList", Class: "FontList", Type: xt.TFontList, Default: "fixed=ft"},
		{Name: "labelString", Class: "XmString", Type: xt.TXmString, Default: ""},
		{Name: "alignment", Class: "Alignment", Type: xt.TString, Default: "center"},
		{Name: "marginWidth", Class: "MarginWidth", Type: xt.TDimension, Default: "2"},
		{Name: "marginHeight", Class: "MarginHeight", Type: xt.TDimension, Default: "2"},
		{Name: "labelType", Class: "LabelType", Type: xt.TString, Default: "string"},
	},
	Initialize: func(w *xt.Widget) {
		if LabelXmString(w) == nil && !w.Explicit("labelString") {
			w.SetResourceValue("labelString", &XmString{Segments: []Segment{{Text: w.Name}}, source: w.Name})
		}
	},
	PreferredSize: xmLabelPreferredSize,
	Redisplay:     xmLabelRedisplay,
}

// LabelXmString returns the widget's labelString value.
func LabelXmString(w *xt.Widget) *XmString {
	if v, ok := w.Get("labelString"); ok {
		if xs, ok := v.(*XmString); ok {
			return xs
		}
	}
	return nil
}

// LabelFontList returns the widget's fontList value.
func LabelFontList(w *xt.Widget) *FontList {
	if v, ok := w.Get("fontList"); ok {
		if fl, ok := v.(*FontList); ok {
			return fl
		}
	}
	return nil
}

func segmentsOf(w *xt.Widget) []Segment {
	xs := LabelXmString(w)
	if xs == nil {
		return nil
	}
	return xs.Segments
}

func fontFor(w *xt.Widget, tag string) *xproto.Font {
	fl := LabelFontList(w)
	if fl != nil {
		if pat, ok := fl.Lookup(tag); ok {
			return xproto.LoadFont(pat)
		}
	}
	return xproto.LoadFont("fixed")
}

func xmLabelPreferredSize(w *xt.Widget) (int, int) {
	width := 0
	height := 13
	for _, seg := range segmentsOf(w) {
		f := fontFor(w, seg.FontTag)
		width += f.TextWidth(seg.Text)
		if f.Height() > height {
			height = f.Height()
		}
	}
	return width + 2*w.Int("marginWidth") + 2*w.Int("shadowThickness"),
		height + 2*w.Int("marginHeight") + 2*w.Int("shadowThickness")
}

func xmLabelRedisplay(w *xt.Widget) {
	d := w.Display()
	clip := w.Clip()
	gc := d.NewGC()
	gc.Foreground = w.PixelRes("background")
	d.FillRectangle(w.Window(), gc, clip.X, clip.Y, clip.W, clip.H)
	gc.Foreground = w.PixelRes("foreground")
	x := w.Int("marginWidth") + w.Int("shadowThickness")
	for _, seg := range segmentsOf(w) {
		f := fontFor(w, seg.FontTag)
		gc.Font = f
		if !w.ClipIntersects(x, w.Int("marginHeight"), f.TextWidth(seg.Text), f.Height()) {
			x += f.TextWidth(seg.Text)
			continue
		}
		text := seg.Text
		if seg.Direction == "rtl" {
			r := []rune(text)
			for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
				r[i], r[j] = r[j], r[i]
			}
			text = string(r)
		}
		d.DrawString(w.Window(), gc, x, w.Int("marginHeight")+f.Ascent, text)
		x += f.TextWidth(seg.Text)
	}
}

// XmPushButtonClass fires armCallback on press and activateCallback on
// release, the Motif activation protocol the paper's predefined-
// callback example binds to.
var XmPushButtonClass = &xt.Class{
	Name:  "XmPushButton",
	Super: XmLabelClass,
	Resources: []xt.Resource{
		{Name: "armCallback", Class: "Callback", Type: xt.TCallback, Default: ""},
		{Name: "activateCallback", Class: "Callback", Type: xt.TCallback, Default: ""},
		{Name: "disarmCallback", Class: "Callback", Type: xt.TCallback, Default: ""},
		{Name: "armColor", Class: "ArmColor", Type: xt.TPixel, Default: "gray75"},
		{Name: "fillOnArm", Class: "FillOnArm", Type: xt.TBoolean, Default: "True"},
	},
	DefaultTranslations: `<Btn1Down>: Arm()
<Btn1Up>: Activate() Disarm()`,
	Actions: map[string]xt.ActionProc{
		"Arm": func(w *xt.Widget, _ *xproto.Event, _ []string) {
			armState(w).armed = true
			w.CallCallbacks("armCallback", nil)
			w.Redraw()
		},
		"Activate": func(w *xt.Widget, _ *xproto.Event, _ []string) {
			if armState(w).armed {
				w.CallCallbacks("activateCallback", nil)
			}
		},
		"Disarm": func(w *xt.Widget, _ *xproto.Event, _ []string) {
			armState(w).armed = false
			w.CallCallbacks("disarmCallback", nil)
			w.Redraw()
		},
	},
	PreferredSize: xmLabelPreferredSize,
	Redisplay:     xmLabelRedisplay,
}

type pushState struct{ armed bool }

func armState(w *xt.Widget) *pushState {
	st, ok := w.Private.(*pushState)
	if !ok {
		st = &pushState{}
		w.Private = st
	}
	return st
}

// XmCascadeButtonClass is the menu-bar button; CascadeButtonHighlight
// is the function the paper's code-generation example wraps as
// mCascadeButtonHighlight.
var XmCascadeButtonClass = &xt.Class{
	Name:  "XmCascadeButton",
	Super: XmPushButtonClass,
	Resources: []xt.Resource{
		{Name: "subMenuId", Class: "Widget", Type: xt.TWidget, Default: ""},
		{Name: "cascadingCallback", Class: "Callback", Type: xt.TCallback, Default: ""},
		{Name: "mappingDelay", Class: "MappingDelay", Type: xt.TInt, Default: "180"},
	},
	PreferredSize: xmLabelPreferredSize,
	Redisplay:     xmLabelRedisplay,
}

type cascadeState struct {
	pushState
	highlighted bool
}

func cascadeSt(w *xt.Widget) *cascadeState {
	st, ok := w.Private.(*cascadeState)
	if !ok {
		st = &cascadeState{}
		w.Private = st
	}
	return st
}

// CascadeButtonHighlight implements XmCascadeButtonHighlight(widget,
// boolean) — the two-argument example in the paper's spec language.
func CascadeButtonHighlight(w *xt.Widget, highlight bool) {
	cascadeSt(w).highlighted = highlight
	w.Redraw()
}

// CascadeButtonHighlighted reports the highlight state (for tests).
func CascadeButtonHighlighted(w *xt.Widget) bool { return cascadeSt(w).highlighted }

// XmRowColumnClass lays children out in rows/columns (menus, menu bars,
// radio boxes).
var XmRowColumnClass = &xt.Class{
	Name:      "XmRowColumn",
	Super:     xt.CompositeClass,
	Composite: true,
	Resources: []xt.Resource{
		{Name: "orientation", Class: "Orientation", Type: xt.TOrientation, Default: "vertical"},
		{Name: "numColumns", Class: "NumColumns", Type: xt.TInt, Default: "1"},
		{Name: "spacing", Class: "Spacing", Type: xt.TDimension, Default: "3"},
		{Name: "marginWidth", Class: "MarginWidth", Type: xt.TDimension, Default: "3"},
		{Name: "marginHeight", Class: "MarginHeight", Type: xt.TDimension, Default: "3"},
		{Name: "rowColumnType", Class: "RowColumnType", Type: xt.TString, Default: "workArea"},
	},
	ChangeManaged: rowColumnLayout,
	PreferredSize: rowColumnPreferredSize,
	Resize:        func(w *xt.Widget) { rowColumnPlace(w) },
}

func rowColumnPlace(w *xt.Widget) (int, int) {
	mw, mh, sp := w.Int("marginWidth"), w.Int("marginHeight"), w.Int("spacing")
	x, y := mw, mh
	maxX, maxY := 1, 1
	horizontal := w.Str("orientation") == "horizontal"
	for _, c := range w.ManagedChildren() {
		cw, ch := c.PreferredSize()
		c.SetChildGeometry(x, y, cw, ch)
		if horizontal {
			x += cw + sp
			maxX = x
			if y+ch+mh > maxY {
				maxY = y + ch + mh
			}
		} else {
			y += ch + sp
			maxY = y
			if x+cw+mw > maxX {
				maxX = x + cw + mw
			}
		}
	}
	return maxX, maxY
}

func rowColumnLayout(w *xt.Widget) {
	maxX, maxY := rowColumnPlace(w)
	if !w.Explicit("width") || !w.Explicit("height") {
		nw, nh := w.Int("width"), w.Int("height")
		if !w.Explicit("width") {
			nw = maxX
		}
		if !w.Explicit("height") {
			nh = maxY
		}
		w.RequestResize(nw, nh)
	}
}

func rowColumnPreferredSize(w *xt.Widget) (int, int) { return rowColumnPlace(w) }

// XmTextClass is the Motif text editor (string-valued "value").
var XmTextClass = &xt.Class{
	Name:  "XmText",
	Super: XmPrimitiveClass,
	Resources: []xt.Resource{
		{Name: "value", Class: "Value", Type: xt.TString, Default: ""},
		{Name: "editable", Class: "Editable", Type: xt.TBoolean, Default: "True"},
		{Name: "columns", Class: "Columns", Type: xt.TInt, Default: "20"},
		{Name: "rows", Class: "Rows", Type: xt.TInt, Default: "1"},
		{Name: "cursorPosition", Class: "CursorPosition", Type: xt.TInt, Default: "0"},
		{Name: "valueChangedCallback", Class: "Callback", Type: xt.TCallback, Default: ""},
		{Name: "activateCallback", Class: "Callback", Type: xt.TCallback, Default: ""},
	},
	DefaultTranslations: `<Key>Return: activate()
<Key>BackSpace: delete-previous-character()
<KeyPress>: self-insert()`,
	Actions: map[string]xt.ActionProc{
		"self-insert": func(w *xt.Widget, ev *xproto.Event, _ []string) {
			if !w.Bool("editable") || ev.Rune < 0x20 {
				return
			}
			TextInsert(w, string(ev.Rune))
		},
		"activate": func(w *xt.Widget, _ *xproto.Event, _ []string) {
			w.CallCallbacks("activateCallback", xt.CallData{"value": w.Str("value")})
		},
		"delete-previous-character": func(w *xt.Widget, _ *xproto.Event, _ []string) {
			if !w.Bool("editable") {
				return
			}
			v := w.Str("value")
			if len(v) == 0 {
				return
			}
			w.SetResourceValue("value", v[:len(v)-1])
			w.CallCallbacks("valueChangedCallback", nil)
			w.Redraw()
		},
	},
	PreferredSize: func(w *xt.Widget) (int, int) {
		f := xproto.LoadFont("fixed")
		return w.Int("columns")*f.Width + 8, w.Int("rows")*f.Height() + 8
	},
	Redisplay: func(w *xt.Widget) {
		d := w.Display()
		clip := w.Clip()
		gc := d.NewGC()
		gc.Foreground = w.PixelRes("background")
		d.FillRectangle(w.Window(), gc, clip.X, clip.Y, clip.W, clip.H)
		gc.Foreground = w.PixelRes("foreground")
		if v := w.Str("value"); w.ClipIntersects(4, 4, gc.Font.TextWidth(v), gc.Font.Height()) {
			d.DrawString(w.Window(), gc, 4, gc.Font.Ascent+4, v)
		}
	},
}

// TextInsert appends text at the cursor (XmTextInsert, simplified to
// end-insertion which is all the demos use).
func TextInsert(w *xt.Widget, s string) {
	w.SetResourceValue("value", w.Str("value")+s)
	w.CallCallbacks("valueChangedCallback", nil)
	w.Redraw()
}

// XmCommandClass is the Motif command widget: a prompt plus a command
// history; XmCommandAppendValue is the naming-convention example
// (mCommandAppendValue) in the paper.
var XmCommandClass = &xt.Class{
	Name:  "XmCommand",
	Super: XmTextClass,
	Resources: []xt.Resource{
		{Name: "promptString", Class: "XmString", Type: xt.TXmString, Default: ""},
		{Name: "historyItems", Class: "StringList", Type: xt.TStringList, Default: ""},
		{Name: "historyMaxItems", Class: "HistoryMaxItems", Type: xt.TInt, Default: "100"},
		{Name: "commandEnteredCallback", Class: "Callback", Type: xt.TCallback, Default: ""},
	},
}

// CommandAppendValue implements XmCommandAppendValue: append text to
// the current command line.
func CommandAppendValue(w *xt.Widget, s string) {
	w.SetResourceValue("value", w.Str("value")+s)
	w.Redraw()
}

// CommandExecute enters the current value into the history and fires
// commandEnteredCallback.
func CommandExecute(w *xt.Widget) {
	v := strings.TrimSpace(w.Str("value"))
	if v == "" {
		return
	}
	hist := w.StringList("historyItems")
	hist = append(hist, v)
	if max := w.Int("historyMaxItems"); max > 0 && len(hist) > max {
		hist = hist[len(hist)-max:]
	}
	w.SetResourceValue("historyItems", hist)
	w.SetResourceValue("value", "")
	w.CallCallbacks("commandEnteredCallback", xt.CallData{"value": v})
	w.Redraw()
}

// AllClasses returns the Motif classes for the Wafe command layer.
func AllClasses() []*xt.Class {
	return []*xt.Class{
		XmPrimitiveClass,
		XmLabelClass,
		XmPushButtonClass,
		XmCascadeButtonClass,
		XmRowColumnClass,
		XmTextClass,
		XmCommandClass,
	}
}

// RegisterConverters installs the XmString and FontList converters on
// an app (the Wafe Motif build registers them; the paper's "XmString
// Converter" section).
func RegisterConverters(app *xt.App) {
	app.RegisterConverter(xt.TFontList, func(_ *xt.App, _ *xt.Widget, v string) (any, error) {
		if strings.TrimSpace(v) == "" {
			return (*FontList)(nil), nil
		}
		return ParseFontList(v)
	})
	app.RegisterFormatter(xt.TFontList, func(v any) string {
		if fl, ok := v.(*FontList); ok {
			return fl.Source()
		}
		return ""
	})
	app.RegisterConverter(xt.TXmString, func(_ *xt.App, w *xt.Widget, v string) (any, error) {
		fl := LabelFontList(w)
		if fl == nil {
			fl = &FontList{Entries: []FontListEntry{{Pattern: "fixed"}}}
		}
		return ParseXmString(v, fl)
	})
	app.RegisterFormatter(xt.TXmString, func(v any) string {
		if xs, ok := v.(*XmString); ok {
			return xs.Source()
		}
		return ""
	})
}
