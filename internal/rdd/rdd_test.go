package rdd

import (
	"testing"

	"wafe/internal/xaw"
	"wafe/internal/xt"
)

func setup(t *testing.T) (*xt.App, *DND, *xt.Widget, *xt.Widget) {
	t.Helper()
	app := xt.NewTestApp("wafe")
	top, err := app.CreateWidget("topLevel", xt.ApplicationShellClass, nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	box, err := app.CreateWidget("box", xaw.BoxClass, top, map[string]string{"orientation": "horizontal"}, true)
	if err != nil {
		t.Fatal(err)
	}
	src, err := app.CreateWidget("src", xaw.LabelClass, box, map[string]string{"label": "drag me"}, true)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := app.CreateWidget("dst", xaw.LabelClass, box, map[string]string{"label": "drop here"}, true)
	if err != nil {
		t.Fatal(err)
	}
	top.Realize()
	app.Pump()
	return app, Context(app), src, dst
}

func TestDragAndDrop(t *testing.T) {
	app, dnd, src, dst := setup(t)
	if err := dnd.RegisterSource(src, func(w *xt.Widget) string { return w.Str("label") }); err != nil {
		t.Fatal(err)
	}
	var got string
	if err := dnd.RegisterTarget(dst, func(w *xt.Widget, data string, x, y int) { got = data }); err != nil {
		t.Fatal(err)
	}
	if err := dnd.Drag(src, dst); err != nil {
		t.Fatal(err)
	}
	if got != "drag me" {
		t.Errorf("dropped data = %q", got)
	}
	if dragging, _ := dnd.Dragging(); dragging {
		t.Error("drag state not cleared")
	}
	_ = app
}

func TestDropOutsideTargetCancels(t *testing.T) {
	_, dnd, src, dst := setup(t)
	_ = dnd.RegisterSource(src, func(*xt.Widget) string { return "x" })
	// dst is NOT registered as a target.
	dropped := false
	if err := dnd.Drag(src, dst); err != nil {
		t.Fatal(err)
	}
	if dropped {
		t.Error("drop fired without target registration")
	}
	if dragging, data := dnd.Dragging(); dragging || data != "" {
		t.Error("cancelled drag left state behind")
	}
}

func TestDragFromNonSourceIsNoop(t *testing.T) {
	_, dnd, src, dst := setup(t)
	var got string
	_ = dnd.RegisterTarget(dst, func(_ *xt.Widget, data string, _, _ int) { got = data })
	// src never registered as source: Btn2 on it does nothing.
	if err := dnd.Drag(src, dst); err != nil {
		t.Fatal(err)
	}
	if got != "" {
		t.Errorf("unexpected drop %q", got)
	}
}

func TestUnregister(t *testing.T) {
	_, dnd, src, dst := setup(t)
	_ = dnd.RegisterSource(src, func(*xt.Widget) string { return "payload" })
	var drops int
	_ = dnd.RegisterTarget(dst, func(*xt.Widget, string, int, int) { drops++ })
	_ = dnd.Drag(src, dst)
	if drops != 1 {
		t.Fatalf("drops = %d", drops)
	}
	dnd.UnregisterTarget(dst)
	_ = dnd.Drag(src, dst)
	if drops != 1 {
		t.Errorf("drop fired after unregister (drops=%d)", drops)
	}
}

func TestContextIsPerApp(t *testing.T) {
	app1 := xt.NewTestApp("a1")
	app2 := xt.NewTestApp("a2")
	if Context(app1) == Context(app2) {
		t.Error("contexts must be per app")
	}
	if Context(app1) != Context(app1) {
		t.Error("context must be stable")
	}
}
