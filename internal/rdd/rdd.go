// Package rdd implements a drag-and-drop library in the spirit of Rdd,
// which the paper cites as one of the Xt-based libraries Wafe was easy
// to extend with ("such as Xpm or for example a drag and drop library
// (Rdd)").
//
// The model follows Rdd's: widgets register as drag sources (with a
// data callback) or drop targets (with a drop callback); a drag is a
// Btn2 press on a source, a move, and a release over a target. The
// library installs the needed translations itself and drives the
// protocol from the pointer events, so client code only registers the
// two callbacks.
package rdd

import (
	"fmt"
	"sync"

	"wafe/internal/xproto"
	"wafe/internal/xt"
)

// DataFunc produces the dragged data when a drag starts on the source.
type DataFunc func(source *xt.Widget) string

// DropFunc receives the data when a drag ends over the target.
type DropFunc func(target *xt.Widget, data string, x, y int)

// DND is one drag-and-drop context per application.
type DND struct {
	app     *xt.App
	sources map[string]DataFunc
	targets map[string]DropFunc

	// active drag state.
	dragging bool
	data     string
	from     string
}

// contexts keyed by app, mirroring RddInitialize's per-display context.
// The map is process-global while each DND belongs to one app (one
// session); the mutex covers concurrent sessions creating or releasing
// their contexts — each DND itself is only ever touched from its own
// session's event loop.
var (
	contextsMu sync.Mutex
	contexts   = map[*xt.App]*DND{}
)

// Context returns (creating on first use) the app's drag-and-drop
// context and registers the Rdd actions.
func Context(app *xt.App) *DND {
	contextsMu.Lock()
	d, ok := contexts[app]
	if !ok {
		d = &DND{
			app:     app,
			sources: make(map[string]DataFunc),
			targets: make(map[string]DropFunc),
		}
		contexts[app] = d
	}
	contextsMu.Unlock()
	if !ok {
		app.AddAction("RddStartDrag", d.actionStartDrag)
		app.AddAction("RddDrop", d.actionDrop)
	}
	return d
}

// Release drops the app's drag-and-drop context, if any. Sessions call
// it on close so the process-global map does not pin retired apps.
func Release(app *xt.App) {
	contextsMu.Lock()
	delete(contexts, app)
	contextsMu.Unlock()
}

// RegisterSource makes the widget a drag source (RddRegisterSource).
// The source also receives the release binding: during a drag the
// pointer is grabbed to the source window, so the release is always
// delivered there and RddDrop resolves the real drop window itself.
func (d *DND) RegisterSource(w *xt.Widget, fn DataFunc) error {
	if fn == nil {
		return fmt.Errorf("rdd: nil data function")
	}
	d.sources[w.Name] = fn
	return d.installTranslations(w, "<Btn2Down>: RddStartDrag()\n<Btn2Up>: RddDrop()")
}

// RegisterTarget makes the widget a drop target (RddRegisterTarget).
func (d *DND) RegisterTarget(w *xt.Widget, fn DropFunc) error {
	if fn == nil {
		return fmt.Errorf("rdd: nil drop function")
	}
	d.targets[w.Name] = fn
	return nil
}

// UnregisterSource removes a source registration.
func (d *DND) UnregisterSource(w *xt.Widget) { delete(d.sources, w.Name) }

// UnregisterTarget removes a target registration.
func (d *DND) UnregisterTarget(w *xt.Widget) { delete(d.targets, w.Name) }

// Dragging reports whether a drag is in progress, with its payload.
func (d *DND) Dragging() (bool, string) { return d.dragging, d.data }

func (d *DND) installTranslations(w *xt.Widget, binding string) error {
	nt, err := xt.ParseTranslations(binding)
	if err != nil {
		return err
	}
	var cur *xt.Translations
	if v, ok := w.Get("translations"); ok {
		cur, _ = v.(*xt.Translations)
	}
	w.SetResourceValue("translations", cur.Merge(nt, xt.MergeAugment))
	w.UpdateInputMask()
	return nil
}

func (d *DND) actionStartDrag(w *xt.Widget, ev *xproto.Event, _ []string) {
	fn, ok := d.sources[w.Name]
	if !ok {
		return
	}
	d.dragging = true
	d.data = fn(w)
	d.from = w.Name
	// Grab the pointer so the release comes back to the source no
	// matter where it happens (Rdd's drag grab).
	w.Display().GrabPointer(w.Window())
}

// actionDrop runs on the source (grab delivery); it resolves the widget
// under the pointer and fires its drop callback if it is a registered
// target, otherwise the drag is cancelled.
func (d *DND) actionDrop(w *xt.Widget, ev *xproto.Event, _ []string) {
	if !d.dragging {
		return
	}
	d.dragging = false
	disp := w.Display()
	if disp.GrabbedWindow() == w.Window() {
		disp.UngrabPointer()
	}
	_, _, ptrWin := disp.Pointer()
	target := d.app.WidgetForWindow(disp, ptrWin)
	if target == nil {
		d.data = ""
		return
	}
	fn, ok := d.targets[target.Name]
	if !ok {
		// Dropped outside any target: the drag is cancelled.
		d.data = ""
		return
	}
	x, y := 0, 0
	if ev != nil {
		x, y = ev.XRoot, ev.YRoot
		if tw, ok := disp.Lookup(target.Window()); ok {
			wx, wy := tw.RootCoords(0, 0)
			x -= wx
			y -= wy
		}
	}
	fn(target, d.data, x, y)
	d.data = ""
}

// Drag drives a complete synthetic drag from source to target (tests
// and headless demos): press Btn2 on the source, move, release on the
// target.
func (d *DND) Drag(source, target *xt.Widget) error {
	if !source.IsRealized() || !target.IsRealized() {
		return fmt.Errorf("rdd: both widgets must be realized")
	}
	disp := source.Display()
	sw, ok := disp.Lookup(source.Window())
	if !ok {
		return fmt.Errorf("rdd: source window missing")
	}
	tw, ok := disp.Lookup(target.Window())
	if !ok {
		return fmt.Errorf("rdd: target window missing")
	}
	sx, sy := sw.RootCoords(2, 2)
	tx, ty := tw.RootCoords(2, 2)
	disp.WarpPointer(sx, sy)
	disp.InjectButtonPress(2)
	d.app.Pump()
	disp.WarpPointer(tx, ty)
	d.app.Pump()
	disp.InjectButtonRelease(2)
	d.app.Pump()
	return nil
}
