package plotter

import (
	"testing"

	"wafe/internal/xproto"
	"wafe/internal/xt"
)

func newApp(t *testing.T) (*xt.App, *xt.Widget) {
	t.Helper()
	app := xt.NewTestApp("wafe")
	top, err := app.CreateWidget("topLevel", xt.ApplicationShellClass, nil, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	return app, top
}

func TestBarGraphValues(t *testing.T) {
	app, top := newApp(t)
	bg, err := app.CreateWidget("bars", BarGraphClass, top, map[string]string{"data": "1 4 2.5 8"}, true)
	if err != nil {
		t.Fatal(err)
	}
	vs := Values(bg)
	if len(vs) != 4 || vs[3] != 8 {
		t.Errorf("values = %v", vs)
	}
	top.Realize()
	app.Pump()
	// A fill op per bar plus the background clear appears in the log.
	ops := bg.Display().DrawLogFor(bg.Window())
	fills := 0
	for _, op := range ops {
		if op.Kind == xproto.OpFillRect {
			fills++
		}
	}
	if fills < 5 { // background + 4 bars
		t.Errorf("fill ops = %d", fills)
	}
	// Streaming new data redraws.
	if err := bg.SetValues(map[string]string{"data": "9 9"}); err != nil {
		t.Fatal(err)
	}
	if len(Values(bg)) != 2 {
		t.Error("data update lost")
	}
}

func TestBarGraphBadData(t *testing.T) {
	app, top := newApp(t)
	bg, _ := app.CreateWidget("b", BarGraphClass, top, map[string]string{"data": "1 oops"}, true)
	if Values(bg) != nil {
		t.Error("bad data should yield nil")
	}
	top.Realize()
	app.Pump() // must not panic
	_ = app
}

func TestLineGraphSeries(t *testing.T) {
	app, top := newApp(t)
	lg, _ := app.CreateWidget("lines", LineGraphClass, top, map[string]string{
		"data": "1 2 3\n4 5 6",
	}, true)
	series := SeriesOf(lg)
	if len(series) != 2 || series[1][2] != 6 {
		t.Errorf("series = %v", series)
	}
	top.Realize()
	app.Pump()
	ops := lg.Display().DrawLogFor(lg.Window())
	lines := 0
	for _, op := range ops {
		if op.Kind == xproto.OpDrawLine {
			lines++
		}
	}
	if lines != 4 { // 2 segments per 3-point series
		t.Errorf("line ops = %d", lines)
	}
}

func TestGraphLayoutLevels(t *testing.T) {
	app, top := newApp(t)
	g, _ := app.CreateWidget("g", GraphClass, top, map[string]string{
		"edges": "Core-Simple Simple-Label Label-Command Core-Composite",
	}, true)
	pos := NodePositions(g)
	if len(pos) != 5 {
		t.Fatalf("nodes = %v", pos)
	}
	if pos["Core"][1] >= pos["Simple"][1] {
		t.Error("Core should be above Simple")
	}
	if pos["Simple"][1] >= pos["Label"][1] {
		t.Error("Simple should be above Label")
	}
	if pos["Label"][1] >= pos["Command"][1] {
		t.Error("Label should be above Command")
	}
	if pos["Composite"][1] != pos["Simple"][1] {
		t.Error("Composite and Simple share level 1")
	}
	top.Realize()
	app.Pump()
	texts := g.Display().StringsDrawn(g.Window())
	if len(texts) != 5 {
		t.Errorf("node labels drawn = %v", texts)
	}
}

func TestGraphCycleIsSafe(t *testing.T) {
	app, top := newApp(t)
	g, _ := app.CreateWidget("g", GraphClass, top, map[string]string{"edges": "a-b b-a"}, true)
	pos := NodePositions(g)
	if len(pos) != 2 {
		t.Errorf("cycle positions = %v", pos)
	}
	top.Realize()
	app.Pump()
}
