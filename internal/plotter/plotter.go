// Package plotter implements the Plotter widget set the Wafe
// distribution ships ("support for the Plotter widget set (which
// supports bar graphs and line graphs)") plus an XmGraph-style graph
// layout widget (the widget behind the paper's Figure 2).
package plotter

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"wafe/internal/xproto"
	"wafe/internal/xt"
)

// BarGraphClass draws one bar per data point. Data arrives through the
// string resource "data" as whitespace-separated numbers, so backends
// stream samples with a single sV command.
var BarGraphClass = &xt.Class{
	Name:  "BarGraph",
	Super: xt.CoreClass,
	Resources: []xt.Resource{
		{Name: "foreground", Class: "Foreground", Type: xt.TPixel, Default: "steelblue"},
		{Name: "data", Class: "Data", Type: xt.TString, Default: ""},
		{Name: "labels", Class: "Labels", Type: xt.TString, Default: ""},
		{Name: "minValue", Class: "MinValue", Type: xt.TFloat, Default: "0"},
		{Name: "maxValue", Class: "MaxValue", Type: xt.TFloat, Default: "0"},
		{Name: "barSpacing", Class: "BarSpacing", Type: xt.TDimension, Default: "2"},
		{Name: "showValues", Class: "ShowValues", Type: xt.TBoolean, Default: "False"},
	},
	PreferredSize: func(w *xt.Widget) (int, int) { return 200, 100 },
	Redisplay:     barGraphRedisplay,
}

// parseSeries parses whitespace-separated floats.
func parseSeries(s string) ([]float64, error) {
	fields := strings.Fields(s)
	out := make([]float64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("plotter: bad data point %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// Values returns the widget's parsed data series.
func Values(w *xt.Widget) []float64 {
	vs, err := parseSeries(w.Str("data"))
	if err != nil {
		return nil
	}
	return vs
}

func dataRange(w *xt.Widget, vs []float64) (lo, hi float64) {
	lo = floatRes(w, "minValue")
	hi = floatRes(w, "maxValue")
	if hi > lo {
		return lo, hi
	}
	lo, hi = 0, 1
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func floatRes(w *xt.Widget, name string) float64 {
	if v, ok := w.Get(name); ok {
		if f, ok := v.(float64); ok {
			return f
		}
	}
	return 0
}

func barGraphRedisplay(w *xt.Widget) {
	d := w.Display()
	clip := w.Clip()
	gc := d.NewGC()
	gc.Foreground = w.PixelRes("background")
	d.FillRectangle(w.Window(), gc, clip.X, clip.Y, clip.W, clip.H)
	vs := Values(w)
	if len(vs) == 0 {
		return
	}
	lo, hi := dataRange(w, vs)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	gc.Foreground = w.PixelRes("foreground")
	sp := w.Int("barSpacing")
	bw := (w.Int("width") - sp*(len(vs)+1)) / len(vs)
	if bw < 1 {
		bw = 1
	}
	h := w.Int("height")
	labels := strings.Fields(w.Str("labels"))
	for i, v := range vs {
		x := sp + i*(bw+sp)
		// One bar's column spans its fill plus label and value text.
		if !w.ClipIntersects(x, 0, bw+sp, h) {
			continue
		}
		bh := int((v - lo) / span * float64(h-14))
		d.FillRectangle(w.Window(), gc, x, h-bh, bw, bh)
		if i < len(labels) {
			lgc := d.NewGC()
			lgc.Foreground = w.PixelRes("foreground")
			d.DrawString(w.Window(), lgc, x, h-bh-2, labels[i])
		}
		if w.Bool("showValues") {
			vgc := d.NewGC()
			d.DrawString(w.Window(), vgc, x, 12, strconv.FormatFloat(v, 'g', 4, 64))
		}
	}
}

// LineGraphClass draws one polyline per series; series are newline-
// separated lists of numbers in the "data" resource.
var LineGraphClass = &xt.Class{
	Name:  "LineGraph",
	Super: xt.CoreClass,
	Resources: []xt.Resource{
		{Name: "foreground", Class: "Foreground", Type: xt.TPixel, Default: "firebrick"},
		{Name: "data", Class: "Data", Type: xt.TString, Default: ""},
		{Name: "minValue", Class: "MinValue", Type: xt.TFloat, Default: "0"},
		{Name: "maxValue", Class: "MaxValue", Type: xt.TFloat, Default: "0"},
		{Name: "gridLines", Class: "GridLines", Type: xt.TInt, Default: "0"},
	},
	PreferredSize: func(w *xt.Widget) (int, int) { return 200, 100 },
	Redisplay:     lineGraphRedisplay,
}

// SeriesOf parses the multi-series data resource.
func SeriesOf(w *xt.Widget) [][]float64 {
	var out [][]float64
	for _, line := range strings.Split(w.Str("data"), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		vs, err := parseSeries(line)
		if err != nil || len(vs) == 0 {
			continue
		}
		out = append(out, vs)
	}
	return out
}

var seriesColors = []xproto.Pixel{
	{R: 178, G: 34, B: 34},  // firebrick
	{R: 70, G: 130, B: 180}, // steelblue
	{R: 34, G: 139, B: 34},  // forestgreen
	{R: 218, G: 165, B: 32}, // goldenrod
}

func lineGraphRedisplay(w *xt.Widget) {
	d := w.Display()
	clip := w.Clip()
	gc := d.NewGC()
	gc.Foreground = w.PixelRes("background")
	d.FillRectangle(w.Window(), gc, clip.X, clip.Y, clip.W, clip.H)
	series := SeriesOf(w)
	if len(series) == 0 {
		return
	}
	lo := floatRes(w, "minValue")
	hi := floatRes(w, "maxValue")
	if hi <= lo {
		lo, hi = 0, 1
		for _, s := range series {
			for _, v := range s {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	wd, h := w.Int("width"), w.Int("height")
	if n := w.Int("gridLines"); n > 0 {
		ggc := d.NewGC()
		ggc.Foreground = xproto.Pixel{R: 220, G: 220, B: 220}
		for i := 1; i <= n; i++ {
			y := h * i / (n + 1)
			if w.ClipIntersects(0, y, wd, 1) {
				d.DrawLine(w.Window(), ggc, 0, y, wd, y)
			}
		}
	}
	for si, s := range series {
		sgc := d.NewGC()
		sgc.Foreground = seriesColors[si%len(seriesColors)]
		if len(s) == 1 {
			y := h - 1 - int((s[0]-lo)/span*float64(h-2))
			if w.ClipIntersects(0, y, 1, 1) {
				d.DrawPoint(w.Window(), sgc, 0, y)
			}
			continue
		}
		for i := 1; i < len(s); i++ {
			x0 := (i - 1) * (wd - 1) / (len(s) - 1)
			x1 := i * (wd - 1) / (len(s) - 1)
			y0 := h - 1 - int((s[i-1]-lo)/span*float64(h-2))
			y1 := h - 1 - int((s[i]-lo)/span*float64(h-2))
			if w.ClipIntersects(minI(x0, x1), minI(y0, y1), absI(x1-x0)+1, absI(y1-y0)+1) {
				d.DrawLine(w.Window(), sgc, x0, y0, x1, y1)
			}
		}
	}
}

// GraphClass is the XmGraph-flavoured graph layout widget (Figure 2 of
// the paper shows it laying out a widget-class hierarchy). Nodes and
// edges are string resources:
//
//	nodes: "a b c"
//	edges: "a-b a-c"
//
// Layout is layered (roots at the top), deterministic, and exposed for
// tests via NodePositions.
var GraphClass = &xt.Class{
	Name:  "Graph",
	Super: xt.CoreClass,
	Resources: []xt.Resource{
		{Name: "foreground", Class: "Foreground", Type: xt.TPixel, Default: "XtDefaultForeground"},
		{Name: "nodes", Class: "Nodes", Type: xt.TString, Default: ""},
		{Name: "edges", Class: "Edges", Type: xt.TString, Default: ""},
		{Name: "nodeWidth", Class: "NodeWidth", Type: xt.TDimension, Default: "80"},
		{Name: "nodeHeight", Class: "NodeHeight", Type: xt.TDimension, Default: "20"},
		{Name: "levelSpacing", Class: "LevelSpacing", Type: xt.TDimension, Default: "30"},
		{Name: "siblingSpacing", Class: "SiblingSpacing", Type: xt.TDimension, Default: "10"},
	},
	PreferredSize: graphPreferredSize,
	Redisplay:     graphRedisplay,
}

// Edge is one directed edge.
type Edge struct{ From, To string }

// GraphEdges parses the edges resource ("a-b c-d").
func GraphEdges(w *xt.Widget) []Edge {
	var out []Edge
	for _, tok := range strings.Fields(w.Str("edges")) {
		parts := strings.SplitN(tok, "-", 2)
		if len(parts) == 2 && parts[0] != "" && parts[1] != "" {
			out = append(out, Edge{From: parts[0], To: parts[1]})
		}
	}
	return out
}

// NodePositions computes the layered layout: node → (x, y).
func NodePositions(w *xt.Widget) map[string][2]int {
	nodes := strings.Fields(w.Str("nodes"))
	edges := GraphEdges(w)
	known := map[string]bool{}
	for _, n := range nodes {
		known[n] = true
	}
	for _, e := range edges {
		if !known[e.From] {
			nodes = append(nodes, e.From)
			known[e.From] = true
		}
		if !known[e.To] {
			nodes = append(nodes, e.To)
			known[e.To] = true
		}
	}
	// Longest-path layering from the roots.
	level := map[string]int{}
	indeg := map[string]int{}
	succ := map[string][]string{}
	for _, e := range edges {
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	var queue []string
	for _, n := range nodes {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	sort.Strings(queue)
	visited := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		visited++
		for _, s := range succ[n] {
			if level[n]+1 > level[s] {
				level[s] = level[n] + 1
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	// Cycles: remaining nodes keep level 0.
	byLevel := map[int][]string{}
	for _, n := range nodes {
		byLevel[level[n]] = append(byLevel[level[n]], n)
	}
	nw, nh := w.Int("nodeWidth"), w.Int("nodeHeight")
	ls, ss := w.Int("levelSpacing"), w.Int("siblingSpacing")
	pos := make(map[string][2]int, len(nodes))
	var levels []int
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	for _, l := range levels {
		row := byLevel[l]
		sort.Strings(row)
		for i, n := range row {
			pos[n] = [2]int{ss + i*(nw+ss), ss + l*(nh+ls)}
		}
	}
	return pos
}

func graphPreferredSize(w *xt.Widget) (int, int) {
	pos := NodePositions(w)
	maxX, maxY := 100, 60
	for _, p := range pos {
		if x := p[0] + w.Int("nodeWidth") + w.Int("siblingSpacing"); x > maxX {
			maxX = x
		}
		if y := p[1] + w.Int("nodeHeight") + w.Int("siblingSpacing"); y > maxY {
			maxY = y
		}
	}
	return maxX, maxY
}

func graphRedisplay(w *xt.Widget) {
	d := w.Display()
	clip := w.Clip()
	gc := d.NewGC()
	gc.Foreground = w.PixelRes("background")
	d.FillRectangle(w.Window(), gc, clip.X, clip.Y, clip.W, clip.H)
	gc.Foreground = w.PixelRes("foreground")
	pos := NodePositions(w)
	nw, nh := w.Int("nodeWidth"), w.Int("nodeHeight")
	for _, e := range GraphEdges(w) {
		f, okF := pos[e.From]
		t, okT := pos[e.To]
		if !okF || !okT {
			continue
		}
		x0, y0 := f[0]+nw/2, f[1]+nh
		x1, y1 := t[0]+nw/2, t[1]
		if w.ClipIntersects(minI(x0, x1), minI(y0, y1), absI(x1-x0)+1, absI(y1-y0)+1) {
			d.DrawLine(w.Window(), gc, x0, y0, x1, y1)
		}
	}
	for n, p := range pos {
		if !w.ClipIntersects(p[0], p[1], nw+1, nh+1) {
			continue
		}
		d.DrawRectangle(w.Window(), gc, p[0], p[1], nw, nh)
		d.DrawString(w.Window(), gc, p[0]+3, p[1]+nh-5, n)
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func absI(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// AllClasses returns the plotter classes for the Wafe command layer.
func AllClasses() []*xt.Class {
	return []*xt.Class{BarGraphClass, LineGraphClass, GraphClass}
}
