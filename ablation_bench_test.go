package wafe

import (
	"fmt"
	"strings"
	"testing"

	"wafe/internal/core"
	"wafe/internal/frontend"
	"wafe/internal/xproto"
	"wafe/internal/xt"
)

// Ablation benchmarks quantify the design choices DESIGN.md calls out:
// the string-only Tcl boundary (re-parsing scripts per invocation), the
// Xrm wildcard matcher, translation-table scaling, and the display-list
// snapshot renderer.

// BenchmarkAblation_XrmScale: query cost as the resource database
// grows — the price of mergeResources-heavy applications.
func BenchmarkAblation_XrmScale(b *testing.B) {
	for _, n := range []int{4, 64, 512} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			db := xt.NewXrm()
			for i := 0; i < n; i++ {
				_ = db.Enter(fmt.Sprintf("*w%d.res%d", i, i), "v")
			}
			_ = db.Enter("wafe*form.label1.foreground", "red")
			names := []string{"wafe", "form", "label1"}
			classes := []string{"Wafe", "Form", "Label"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, ok := db.Query(names, classes, "foreground", "Foreground")
				if !ok || v != "red" {
					b.Fatal("query failed")
				}
			}
		})
	}
}

// BenchmarkAblation_TranslationScale: event match cost against growing
// translation tables (action-heavy widgets).
func BenchmarkAblation_TranslationScale(b *testing.B) {
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j",
		"k", "l", "m", "n", "o", "p", "q", "r", "s", "t",
		"u", "v", "w", "x", "y", "z", "Return", "Tab", "Escape", "BackSpace", "Left", "Right"}
	for _, n := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("bindings=%d", n), func(b *testing.B) {
			var lines []string
			for i := 0; i < n; i++ {
				lines = append(lines, fmt.Sprintf("<Key>%s: act%d()", keys[i%len(keys)], i))
			}
			tt, err := xt.ParseTranslations(strings.Join(lines, "\n"))
			if err != nil {
				b.Fatal(err)
			}
			ev := &xproto.Event{Type: xproto.KeyPress, Keysym: keys[(n-1)%len(keys)]}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if tt.Match(ev) == nil {
					b.Fatal("no match")
				}
			}
		})
	}
}

// BenchmarkAblation_SnapshotScale: ASCII snapshot cost over widget
// count (the headless observation primitive).
func BenchmarkAblation_SnapshotScale(b *testing.B) {
	for _, n := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("widgets=%d", n), func(b *testing.B) {
			w := core.NewTest()
			w.Interp.Stdout = func(string) {}
			if _, err := w.Eval("box holder topLevel"); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if _, err := w.Eval(fmt.Sprintf("label item%d holder label {item number %d}", i, i)); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := w.Eval("realize"); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap, err := w.Eval("snapshot")
				if err != nil || len(snap) == 0 {
					b.Fatal("snapshot failed")
				}
			}
		})
	}
}

// BenchmarkAblation_ScriptReparse: the string-only boundary means every
// callback invocation re-parses its Tcl script (classic Tcl behaviour).
// Compare a full Eval against pre-split EvalWords to isolate parser
// cost.
func BenchmarkAblation_ScriptReparse(b *testing.B) {
	w := core.NewTest()
	w.Interp.Stdout = func(string) {}
	if _, err := w.Eval("label tgt topLevel"); err != nil {
		b.Fatal(err)
	}
	b.Run("eval-reparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := w.Interp.Eval("sV tgt label constant-value"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pre-split-words", func(b *testing.B) {
		argv := []string{"sV", "tgt", "label", "constant-value"}
		for i := 0; i < b.N; i++ {
			if _, err := w.Interp.EvalWords(argv); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_LineLength: protocol cost by command-line length up
// to near the 64 KB limit.
func BenchmarkAblation_LineLength(b *testing.B) {
	for _, size := range []int{100, 10 << 10, 60 << 10} {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			w := core.NewTest()
			w.Interp.Stdout = func(string) {}
			var sink strings.Builder
			f := frontend.New(w, nil, &sink)
			f.HandleAppLine("%label l topLevel")
			payload := strings.Repeat("x", size-30)
			line := "%sV l label {" + payload + "}"
			b.SetBytes(int64(len(line)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.HandleAppLine(line)
			}
			if f.OverlongLines != 0 {
				b.Fatal("line rejected")
			}
		})
	}
}

// BenchmarkAblation_PumpIdle: cost of an idle event-loop pump (the
// per-command overhead Wafe adds after every evaluation).
func BenchmarkAblation_PumpIdle(b *testing.B) {
	w := core.NewTest()
	w.Interp.Stdout = func(string) {}
	if _, err := w.Eval("label l topLevel\nrealize"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.App.Pump()
	}
}
