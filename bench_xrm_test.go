package wafe

import (
	"fmt"
	"testing"

	"wafe/internal/xt"
)

// BenchmarkXrm_CachedQuery is the steady-state resource lookup: a large
// database, one widget path queried repeatedly. The search list is
// cached after the first query, so every iteration must run with zero
// heap allocations — scripts/bench.sh xrm gates on B/op == 0 here.
func BenchmarkXrm_CachedQuery(b *testing.B) {
	db := xt.NewXrm()
	for i := 0; i < 512; i++ {
		_ = db.Enter(fmt.Sprintf("*w%d.res%d", i, i), "v")
	}
	_ = db.Enter("wafe*form.label1.foreground", "red")
	names := []string{"wafe", "form", "label1"}
	classes := []string{"Wafe", "Form", "Label"}
	// Warm the search-list cache.
	if v, ok := db.Query(names, classes, "foreground", "Foreground"); !ok || v != "red" {
		b.Fatal("warm query failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, ok := db.Query(names, classes, "foreground", "Foreground")
		if !ok || v != "red" {
			b.Fatal("query failed")
		}
	}
}

// BenchmarkXrm_EnterScale measures database load cost: entering n
// distinct specifications into a fresh database. The quark tree makes
// each Enter O(depth); the flat-list engine rescanned all prior
// entries, making bulk loads quadratic.
func BenchmarkXrm_EnterScale(b *testing.B) {
	for _, n := range []int{64, 512} {
		specs := make([]string, n)
		for i := range specs {
			specs[i] = fmt.Sprintf("*w%d.res%d", i, i)
		}
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db := xt.NewXrm()
				for _, s := range specs {
					_ = db.Enter(s, "v")
				}
			}
		})
	}
}
