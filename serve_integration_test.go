//go:build unix

package wafe

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeBinaryEndToEnd drives the real binary in serve mode over a
// Unix socket: two concurrent backends with colliding names, one
// clean quit, one SIGTERM-driven graceful shutdown, and the exit
// metrics document keyed by session id.
func TestServeBinaryEndToEnd(t *testing.T) {
	bin := buildWafe(t)
	dir := t.TempDir()
	sock := filepath.Join(dir, "wafe.sock")
	dump := filepath.Join(dir, "metrics.json")

	cmd := exec.Command(bin, "--serve", "unix:"+sock, "--max-sessions", "8", "--metrics-dump", dump)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var waitErr error
	exited := make(chan struct{})
	go func() { waitErr = cmd.Wait(); close(exited) }()
	defer func() {
		select {
		case <-exited:
		default:
			_ = cmd.Process.Kill()
			<-exited
		}
	}()

	// Wait for the socket to come up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(sock); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("socket never appeared; stderr:\n%s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	type backend struct {
		conn net.Conn
		br   *bufio.Reader
		id   string
	}
	dial := func() *backend {
		conn, err := net.Dial("unix", sock)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		b := &backend{conn: conn, br: bufio.NewReader(conn)}
		line, err := b.br.ReadString('\n')
		if err != nil || !strings.HasPrefix(line, "wafe session s") {
			t.Fatalf("greeting = %q, %v", line, err)
		}
		b.id = strings.TrimSpace(strings.TrimPrefix(line, "wafe session "))
		return b
	}
	sendLine := func(b *backend, s string) {
		t.Helper()
		if _, err := io.WriteString(b.conn, s+"\n"); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	readLine := func(b *backend) string {
		t.Helper()
		_ = b.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		line, err := b.br.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return strings.TrimRight(line, "\n")
	}

	b1 := dial()
	b2 := dial()
	defer b1.conn.Close()
	defer b2.conn.Close()
	if b1.id == b2.id {
		t.Fatalf("both sessions got id %s", b1.id)
	}
	// Colliding names, distinct values — each session answers with its own.
	sendLine(b1, "%label l topLevel label one")
	sendLine(b2, "%label l topLevel label two")
	sendLine(b1, "%echo [gV l label]")
	sendLine(b2, "%echo [gV l label]")
	if got := readLine(b1); got != "one" {
		t.Errorf("session %s sees %q, want \"one\"", b1.id, got)
	}
	if got := readLine(b2); got != "two" {
		t.Errorf("session %s sees %q, want \"two\"", b2.id, got)
	}
	// One backend quits cleanly; the other stays for the shutdown.
	// Reading to EOF observes the server closing b1's connection, so
	// the quit is fully processed before the SIGTERM below races it.
	sendLine(b1, "%quit")
	_ = b1.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.Copy(io.Discard, b1.conn); err != nil {
		t.Fatalf("draining quit session: %v", err)
	}

	// SIGTERM drains the server gracefully and writes the dump.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-exited:
		if waitErr != nil {
			t.Fatalf("serve process exited with %v; stderr:\n%s", waitErr, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("serve process did not exit on SIGTERM; stderr:\n%s", stderr.String())
	}

	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatalf("metrics dump: %v; stderr:\n%s", err, stderr.String())
	}
	var doc struct {
		Server   map[string]int64            `json:"server"`
		Sessions map[string]map[string]int64 `json:"sessions"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("dump not valid JSON: %v\n%s", err, data)
	}
	if doc.Server["server.sessions_total"] != 2 {
		t.Errorf("server.sessions_total = %d, want 2", doc.Server["server.sessions_total"])
	}
	for _, id := range []string{b1.id, b2.id} {
		if _, ok := doc.Sessions[id]; !ok {
			t.Errorf("dump missing session %q; have:\n%s", id, data)
		}
	}
	if doc.Sessions[b1.id]["frontend.command_lines"] != 3 {
		t.Errorf("session %s command_lines = %d, want 3", b1.id, doc.Sessions[b1.id]["frontend.command_lines"])
	}
	// The socket file is gone after the graceful close.
	if _, err := os.Stat(sock); !os.IsNotExist(err) {
		t.Errorf("socket file still present after shutdown: %v", err)
	}
}
