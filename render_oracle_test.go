package wafe

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wafe/internal/core"
)

// The render oracle proves the damage-region pipeline is invisible:
// running the exact same program with clipped partial redraws (the
// default) and with App.SetFullRepaint(true) (every repaint clears the
// window and redisplays everything, the pre-damage behaviour) must
// produce byte-identical ASCII snapshots and rasterized images.

// renderStates captures everything observable about a Wafe instance's
// screen: the ASCII snapshot and the RGBA rasterization (which, unlike
// the snapshot, sees fills, lines and partial clears).
func renderState(w *core.Wafe) (string, []byte) {
	if w.TopLevel == nil || !w.TopLevel.IsRealized() {
		return "<unrealized>", nil
	}
	d := w.TopLevel.Display()
	win := w.TopLevel.Window()
	return d.Snapshot(win), d.RenderImage(win).Pix
}

// TestRenderOracle_Demos runs every demo script under both pipelines
// and compares the final screen.
func TestRenderOracle_Demos(t *testing.T) {
	demos, err := filepath.Glob("demos/*.wafe")
	if err != nil || len(demos) == 0 {
		t.Fatalf("no demos found: %v", err)
	}
	type outcome struct {
		errStr, snap string
		pix          []byte
	}
	run := func(src string, full bool) outcome {
		w := core.NewTest()
		w.Interp.Stdout = func(string) {}
		w.App.SetFullRepaint(full)
		_, err := w.Eval(src)
		w.App.Pump()
		o := outcome{}
		if err != nil {
			o.errStr = err.Error()
		}
		o.snap, o.pix = renderState(w)
		return o
	}
	for _, demo := range demos {
		demo := demo
		t.Run(filepath.Base(demo), func(t *testing.T) {
			data, err := os.ReadFile(demo)
			if err != nil {
				t.Fatalf("reading %s: %v", demo, err)
			}
			src := string(data)
			if strings.HasPrefix(src, "#!") {
				if nl := strings.IndexByte(src, '\n'); nl >= 0 {
					src = src[nl+1:]
				}
			}
			clipped := run(src, false)
			fullRepaint := run(src, true)
			if clipped.errStr != fullRepaint.errStr {
				t.Fatalf("error mismatch:\nclipped: %s\nfull:    %s", clipped.errStr, fullRepaint.errStr)
			}
			if clipped.snap != fullRepaint.snap {
				t.Errorf("snapshot mismatch:\n--- clipped ---\n%s\n--- full repaint ---\n%s", clipped.snap, fullRepaint.snap)
			}
			if !bytes.Equal(clipped.pix, fullRepaint.pix) {
				t.Errorf("rasterized image mismatch (%d vs %d bytes)", len(clipped.pix), len(fullRepaint.pix))
			}
		})
	}
}

// oracleZoo builds one instance with a widget of every render-heavy
// class, realized and pumped.
const oracleZoo = `box holder topLevel
label lab holder label {hello world}
command btn holder label Press
toggle tog holder label Flip
list lst holder list {alpha
beta
gamma
delta
epsilon
zeta}
scrollbar sb holder
stripChart chart holder
asciiText txt holder editType edit string {line one
line two}
realize
sync`

// TestRenderOracle_Randomized drives identical randomized damage/update
// sequences through twin instances — one clipped, one full-repaint —
// and compares the screen after every step. This is the adversarial
// probe for coalescing bugs: stale strings ClearArea failed to scrub,
// clip rectangles that miss an op's true bounds, highlight rows left
// behind by targeted repaints.
func TestRenderOracle_Randomized(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			clipped := core.NewTest()
			clipped.Interp.Stdout = func(string) {}
			full := core.NewTest()
			full.Interp.Stdout = func(string) {}
			full.App.SetFullRepaint(true)
			for _, w := range []*core.Wafe{clipped, full} {
				if _, err := w.Eval(oracleZoo); err != nil {
					t.Fatalf("zoo setup: %v", err)
				}
			}
			rng := rand.New(rand.NewSource(seed))
			step := func() string {
				switch rng.Intn(10) {
				case 0:
					return fmt.Sprintf("listHighlight lst %d", rng.Intn(6))
				case 1:
					return "listUnhighlight lst"
				case 2:
					return fmt.Sprintf("scrollbarSetThumb sb 0.%d 0.%d", rng.Intn(10), rng.Intn(10))
				case 3:
					return fmt.Sprintf("stripChartSample chart %d", rng.Intn(9)+1)
				case 4:
					return fmt.Sprintf("sV lab label {value %d}", rng.Intn(100))
				case 5:
					// Whole-window or sub-rect expose on a random widget.
					target := []string{"lab", "lst", "sb", "chart", "txt", "btn"}[rng.Intn(6)]
					if rng.Intn(2) == 0 {
						return "sendExpose " + target
					}
					return fmt.Sprintf("sendExpose %s %d %d %d %d", target,
						rng.Intn(40), rng.Intn(20), rng.Intn(60)+1, rng.Intn(30)+1)
				case 6:
					return "sendClick btn"
				case 7:
					return "sendClick tog"
				case 8:
					return fmt.Sprintf("sendKeys txt x%d", rng.Intn(10))
				default:
					return "sync"
				}
			}
			for i := 0; i < 250; i++ {
				op := step()
				r1, err1 := clipped.Eval(op)
				r2, err2 := full.Eval(op)
				if r1 != r2 || (err1 == nil) != (err2 == nil) {
					t.Fatalf("step %d %q: result mismatch: %q/%v vs %q/%v", i, op, r1, err1, r2, err2)
				}
				s1, p1 := renderState(clipped)
				s2, p2 := renderState(full)
				if s1 != s2 {
					t.Fatalf("step %d %q: snapshot mismatch:\n--- clipped ---\n%s\n--- full repaint ---\n%s", i, op, s1, s2)
				}
				if !bytes.Equal(p1, p2) {
					t.Fatalf("step %d %q: rasterized image mismatch", i, op)
				}
			}
		})
	}
}
