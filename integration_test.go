package wafe

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"wafe/internal/core"
	"wafe/internal/frontend"
)

var (
	buildOnce sync.Once
	wafeBin   string
	buildErr  error
)

// buildWafe compiles cmd/wafe once per test run.
func buildWafe(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "wafebin")
		if err != nil {
			buildErr = err
			return
		}
		wafeBin = filepath.Join(dir, "wafe")
		cmd := exec.Command("go", "build", "-o", wafeBin, "./cmd/wafe")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			t.Logf("build output: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building wafe: %v", buildErr)
	}
	return wafeBin
}

// TestDemoScripts runs every file-mode script under demos/ against the
// real binary — the demo applications of the Wafe distribution.
func TestDemoScripts(t *testing.T) {
	bin := buildWafe(t)
	demos, err := filepath.Glob("demos/*.wafe")
	if err != nil || len(demos) == 0 {
		t.Fatalf("no demos found: %v", err)
	}
	wantMarker := map[string]string{
		"xwafemc.wafe":   "final: 3 of 3 correct",
		"xwafetel.wafe":  "lookup: Neumann Gustaf -> +43 1 31336 4671",
		"xwafecf.wafe":   "details popped up with: card 2: Tcl 6.7",
		"xruptimes.wafe": "sparc1 now: load 3.7",
		"xbm.wafe":       "img1 pixmap: arrow (16x12)",
		"xwafemail.wafe": "reply-to: nusser@wu-wien.ac.at subject Re: master thesis",
		"xwafeora.wafe":  "updated row 1 year to 1994",
	}
	for _, demo := range demos {
		demo := demo
		t.Run(filepath.Base(demo), func(t *testing.T) {
			out, err := exec.Command(bin, "--f", demo).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", demo, err, out)
			}
			if marker := wantMarker[filepath.Base(demo)]; marker != "" {
				if !strings.Contains(string(out), marker) {
					t.Errorf("%s output missing %q:\n%s", demo, marker, out)
				}
			}
		})
	}
}

// TestExamples runs every example program end to end ("go run" each
// main). Skipped with -short: each example compiles a binary.
func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow under -short")
	}
	wantMarker := map[string]string{
		"quickstart":   "Goodbye",
		"primefactors": "frontend: 360 → 2*2*2*3*3*5",
		"dirtree":      "--- after selecting \"src/\" ---",
		"netstats":     "round 1 done",
		"motif":        "direction=rtl",
		"designer":     "widget class hierarchy",
		"gopher":       "Wafe = Tcl + (Intrinsics + Widgets + Converters + Ext).",
		"perlwafe":     "wafe reports 42 resources",
	}
	examples, err := filepath.Glob("examples/*")
	if err != nil || len(examples) == 0 {
		t.Fatal("no examples found")
	}
	for _, dir := range examples {
		dir := dir
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			args := []string{"run", "./" + dir}
			if name == "netstats" {
				args = append(args, "-rounds", "2")
			}
			cmd := exec.Command("go", args...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			marker := wantMarker[name]
			if marker == "" {
				t.Fatalf("no output marker defined for example %s", name)
			}
			if !strings.Contains(string(out), marker) {
				t.Errorf("example %s output missing %q:\n%s", name, marker, out)
			}
		})
	}
	// Cleanup artifacts examples write into the repo root.
	t.Cleanup(func() { os.Remove("figure3.png") })
}

// TestDesignerInteractive drives the xwafedesign example's -i mode over
// stdin and runs the saved script through the real wafe binary — the
// paper's "this script can also be used later as a frontend" loop.
func TestDesignerInteractive(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles two binaries")
	}
	bin := buildWafe(t)
	dir := t.TempDir()
	saved := filepath.Join(dir, "designed.wafe")
	session := strings.Join([]string{
		"add form top topLevel",
		"add command go top",
		"set go callback quit",
		"save " + saved,
		"done",
	}, "\n") + "\n"
	cmd := exec.Command("go", "run", "./examples/designer", "-i")
	cmd.Stdin = strings.NewReader(session)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("designer -i: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "saved 2 widgets") {
		t.Fatalf("save missing:\n%s", out)
	}
	// Append a synthetic click so the saved UI quits by itself, then
	// run it in file mode.
	f, err := os.OpenFile(saved, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("sendClick go\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if out, err := exec.Command(bin, "--f", saved).CombinedOutput(); err != nil {
		t.Fatalf("saved script failed: %v\n%s", err, out)
	}
}

// TestInteractiveModeBinary drives the binary's interactive mode over
// stdin, replaying the paper's getResourceList session.
func TestInteractiveModeBinary(t *testing.T) {
	bin := buildWafe(t)
	script := `label l topLevel
echo [getResourceList l retVal]
echo Resources: $retVal
quit
`
	cmd := exec.Command(bin)
	cmd.Stdin = strings.NewReader(script)
	var out bytes.Buffer
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("interactive run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "42") {
		t.Errorf("missing resource count:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Resources: destroyCallback ancestorSensitive") {
		t.Errorf("missing resource list:\n%s", out.String())
	}
}

// TestFrontendModeBinary runs the real frontend with a /bin/sh backend —
// the cross-language property the paper is about.
func TestFrontendModeBinary(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("needs /bin/sh")
	}
	if _, err := os.Stat("/bin/sh"); err != nil {
		t.Skip("no /bin/sh")
	}
	bin := buildWafe(t)
	dir := t.TempDir()
	backend := filepath.Join(dir, "wafecount")
	script := `#!/bin/sh
echo '%command inc topLevel label {+1} callback {echo inc}'
echo '%realize'
echo '%sendClick inc'
echo '%sendClick inc'
echo '%sendClick inc'
echo '%echo state done'
n=0
while read line; do
  case "$line" in
    inc) n=$((n+1)) ;;
    state*) echo "backend counted $n clicks"; echo '%quit' ;;
  esac
done
`
	if err := os.WriteFile(backend, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "--app", backend).CombinedOutput()
	if err != nil {
		t.Fatalf("frontend run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "backend counted 3 clicks") {
		t.Errorf("click round trip failed:\n%s", out)
	}
}

// TestSpawnTransports runs the same shell backend over both transports
// (socketpair preferred, pipes fallback — the paper's availability
// note).
func TestSpawnTransports(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("needs /bin/sh")
	}
	if _, err := os.Stat("/bin/sh"); err != nil {
		t.Skip("no /bin/sh")
	}
	dir := t.TempDir()
	backend := filepath.Join(dir, "echoapp")
	script := `#!/bin/sh
echo '%label l topLevel label transported'
echo '%realize'
echo '%echo probe [gV l label]'
while read line; do
  case "$line" in
    probe*) echo "got: $line"; echo '%quit' ;;
  esac
done
`
	if err := os.WriteFile(backend, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	for name, ipc := range map[string]frontend.IPC{"socketpair": frontend.IPCSocketpair, "pipe": frontend.IPCPipe} {
		ipc := ipc
		t.Run(name, func(t *testing.T) {
			w := core.NewTest()
			var term bytes.Buffer
			f := frontend.New(w, nil, &syncWriter{w: &term})
			child, err := f.SpawnIPC(backend, nil, ipc)
			if err != nil {
				t.Fatal(err)
			}
			if name == "socketpair" && child.Transport != frontend.IPCSocketpair {
				t.Log("socketpair unavailable; fell back to pipes")
			}
			done := make(chan int, 1)
			go func() { done <- w.App.MainLoop() }()
			select {
			case <-done:
			case <-timeAfter(5):
				t.Fatal("main loop did not finish")
			}
			child.Kill()
			_ = child.Wait()
			if !strings.Contains(term.String(), "got: probe transported") {
				t.Errorf("round trip failed over %s:\n%s", name, term.String())
			}
		})
	}
}

type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func timeAfter(sec int) <-chan time.Time { return time.After(time.Duration(sec) * time.Second) }

// TestSymlinkDispatchBinary verifies the "ln -s wafe xwafeApp" scheme
// against the real binary.
func TestSymlinkDispatchBinary(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("symlinks")
	}
	bin := buildWafe(t)
	dir := t.TempDir()
	backend := filepath.Join(dir, "wafehello")
	if err := os.WriteFile(backend, []byte("#!/bin/sh\necho '%echo [pid]'\necho '%quit'\nread x\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	link := filepath.Join(dir, "xwafehello")
	if err := os.Symlink(bin, link); err != nil {
		t.Skip("cannot create symlink:", err)
	}
	cmd := exec.Command(link)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "PATH="+dir+":"+os.Getenv("PATH"))
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("symlink run: %v\n%s", err, out)
	}
}

// TestFileModeExitCode: quit's status becomes the process exit code.
func TestFileModeExitCode(t *testing.T) {
	bin := buildWafe(t)
	dir := t.TempDir()
	script := filepath.Join(dir, "exit3.wafe")
	if err := os.WriteFile(script, []byte("quit 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := exec.Command(bin, "--f", script).Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Errorf("exit code = %v, want 3", err)
	}
}

// TestResourceFileBinary: the application-defaults file loads at
// startup and applies to widgets, with -xrm taking precedence.
func TestResourceFileBinary(t *testing.T) {
	bin := buildWafe(t)
	dir := t.TempDir()
	resFile := filepath.Join(dir, "app.ad")
	if err := os.WriteFile(resFile, []byte("*label: from-file\n*foreground: blue\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	script := filepath.Join(dir, "r.wafe")
	if err := os.WriteFile(script, []byte("label l topLevel\necho label=[gV l label] fg=[gV l foreground]\nquit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "--resources", resFile, "--f", script).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "label=from-file") || !strings.Contains(string(out), "fg=#0000ff") {
		t.Errorf("resource file ignored:\n%s", out)
	}
	// -xrm overrides the file.
	out, err = exec.Command(bin, "--resources", resFile, "-xrm", "*label: from-xrm", "--f", script).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "label=from-xrm") {
		t.Errorf("-xrm should override the file:\n%s", out)
	}
	// Env-var path.
	cmd := exec.Command(bin, "--f", script)
	cmd.Env = append(os.Environ(), "WAFE_RESOURCE_FILE="+resFile)
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("env run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "label=from-file") {
		t.Errorf("WAFE_RESOURCE_FILE ignored:\n%s", out)
	}
}

// TestXrmOptionBinary: -xrm entries reach the resource database.
func TestXrmOptionBinary(t *testing.T) {
	bin := buildWafe(t)
	dir := t.TempDir()
	script := filepath.Join(dir, "xrm.wafe")
	if err := os.WriteFile(script, []byte("label l topLevel\necho label=[gV l label]\nquit\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-xrm", "*label: from-xrm", "--f", script).CombinedOutput()
	if err != nil {
		t.Fatalf("xrm run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "label=from-xrm") {
		t.Errorf("-xrm ignored:\n%s", out)
	}
}
