// Primefactors is the paper's central demo: the Perl program of the
// "Typical Structure of Application Programs" section, transliterated
// into Go, running against the real frontend over real pipes.
//
// The process re-executes itself with -backend to play the application
// program: the parent runs the Wafe frontend, the child writes
// %-prefixed commands on stdout (phase 2: build the widget tree) and
// then enters the read loop (phase 3), computing prime factors for
// every number the frontend reports.
//
//	go run ./examples/primefactors            # run the demo
//	go run ./examples/primefactors 3960 97    # factor custom numbers
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"wafe/internal/core"
	"wafe/internal/frontend"
)

func main() {
	backendMode := flag.Bool("backend", false, "run as the application program (internal)")
	flag.Parse()
	if *backendMode {
		backend()
		return
	}
	inputs := flag.Args()
	if len(inputs) == 0 {
		inputs = []string{"360", "97", "1", "123456"}
	}
	frontendProcess(inputs)
}

// backend is the Go transliteration of the paper's Perl program.
func backend() {
	out := bufio.NewWriter(os.Stdout)
	emit := func(s string) {
		out.WriteString(s)
		out.WriteByte('\n')
		out.Flush() // $|=1; set output unbuffered
	}
	// Build widget tree (phase 2) — the exact tree from the paper.
	emit("%form top topLevel")
	emit("%asciiText input top editType edit width 200")
	emit("%action input override {<Key>Return: exec(echo [gV input string])}")
	emit("%label result top label {} width 200 fromVert input")
	emit("%command quit top fromVert result callback quit")
	emit("%label info top fromVert result fromHoriz quit label {} borderWidth 0 width 150")
	emit("%realize")
	emit("backend: widget tree submitted, entering read loop")

	// Read loop (phase 3).
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		n, err := strconv.Atoi(line)
		if err != nil || n < 0 {
			emit("%sV info label (invalid input)")
			continue
		}
		emit("%sV info label thinking...")
		start := time.Now()
		factors := primeFactors(n)
		emit("%sV result label {" + strings.Join(factors, "*") + "}")
		emit(fmt.Sprintf("%%sV info label {%d seconds}", int(time.Since(start).Seconds())))
		emit(fmt.Sprintf("backend: %d = %s", n, strings.Join(factors, "*")))
	}
}

func primeFactors(n int) []string {
	if n < 2 {
		return nil
	}
	var out []string
	for d := 2; d <= n; d++ {
		for n%d == 0 {
			out = append(out, strconv.Itoa(d))
			n /= d
		}
	}
	return out
}

// frontendProcess runs Wafe, spawns the backend and drives the UI: for
// each requested number it types the digits into the asciiText widget,
// presses Return, and prints the result label once the backend updated
// it.
func frontendProcess(inputs []string) {
	w, err := core.New(core.Config{AppName: "xprimefactors", Set: core.SetAthena, TestDisplay: true})
	if err != nil {
		fatal(err)
	}
	f := frontend.New(w, &frontend.Options{Mode: frontend.ModeFrontend}, os.Stdout)
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	child, err := f.Spawn(exe, []string{"-backend"})
	if err != nil {
		fatal(err)
	}
	done := make(chan int, 1)
	go func() { done <- w.App.MainLoop() }()

	// Drive: type each number + Return; the exec action forwards the
	// text to the backend, which updates the result label.
	for _, in := range inputs {
		text := in
		waitFor(w, func() bool { return w.App.WidgetByName("input") != nil && w.App.WidgetByName("input").IsRealized() })
		post(w, func() {
			wid := w.App.WidgetByName("input")
			_, _ = w.Eval("sV input string {}")
			wid.Display().SetInputFocus(wid.Window())
			_ = wid.Display().TypeString(text + "\r")
			w.App.Pump()
		})
		// Wait until the result label reflects this input.
		waitFor(w, func() bool {
			info := w.App.WidgetByName("info")
			return info != nil && strings.Contains(info.Str("label"), "seconds")
		})
		var result string
		post(w, func() {
			result = w.App.WidgetByName("result").Str("label")
			_, _ = w.Eval("sV info label {}")
		})
		fmt.Printf("frontend: %s → %s\n", in, result)
	}
	post(w, func() {
		snap, _ := w.Eval("snapshot")
		fmt.Println("--- final snapshot ---")
		fmt.Print(snap)
		w.App.Quit(0)
	})
	<-done
	child.Kill()
	_ = child.Wait()
}

func post(w *core.Wafe, fn func()) {
	ch := make(chan struct{})
	w.App.Post(func() { fn(); close(ch) })
	<-ch
}

func waitFor(w *core.Wafe, cond func() bool) {
	for i := 0; i < 2000; i++ {
		ok := false
		post(w, func() { ok = cond() })
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	fatal(fmt.Errorf("timeout waiting for backend"))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "primefactors:", err)
	os.Exit(1)
}
