// Perlwafe reproduces the last entry of the paper's demo list: "an
// example program calling Wafe as a subprocess of the application
// program (normally, it is the other way round)". Here the application
// is this Go program; it builds the wafe binary, starts it in
// interactive mode as a child, feeds Wafe commands down its stdin and
// reads results from its stdout.
//
//	go run ./examples/perlwafe
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

func main() {
	bin, cleanup, err := buildWafe()
	if err != nil {
		fatal(err)
	}
	defer cleanup()

	cmd := exec.Command(bin)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	cmd.Stderr = io.Discard // the wafe> prompts
	if err := cmd.Start(); err != nil {
		fatal(err)
	}
	out := bufio.NewScanner(stdout)

	send := func(line string) {
		fmt.Fprintln(stdin, line)
	}
	// Ask wafe to echo a sentinel after each step so we know when the
	// step's output is complete.
	expect := func(sentinel string) []string {
		var lines []string
		for out.Scan() {
			l := out.Text()
			if l == sentinel {
				return lines
			}
			lines = append(lines, l)
		}
		fatal(fmt.Errorf("wafe exited before sentinel %q", sentinel))
		return nil
	}

	fmt.Println("application: started wafe as a subprocess, building a UI remotely")
	send("label l topLevel label {driven from the parent process}")
	send("realize")
	send("echo step1-done")
	expect("step1-done")

	send("echo [getResourceList l rv]")
	send("echo step2-done")
	res := expect("step2-done")
	fmt.Printf("application: wafe reports %s resources for the Label\n", strings.TrimSpace(strings.Join(res, "")))

	send("echo [snapshot]")
	send("echo step3-done")
	snap := expect("step3-done")
	fmt.Println("application: snapshot received from the wafe child:")
	for _, l := range snap {
		fmt.Println("  " + l)
	}

	send("quit")
	_ = stdin.(io.Closer).Close()
	if err := cmd.Wait(); err != nil {
		fatal(err)
	}
	fmt.Println("application: wafe child exited cleanly")
}

// buildWafe compiles cmd/wafe into a temp dir (the example is run from
// the repository root via go run).
func buildWafe() (string, func(), error) {
	dir, err := os.MkdirTemp("", "perlwafe")
	if err != nil {
		return "", nil, err
	}
	bin := filepath.Join(dir, "wafe")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/wafe")
	if out, err := cmd.CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("building wafe: %v\n%s", err, out)
	}
	return bin, func() { os.RemoveAll(dir) }, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "perlwafe:", err)
	os.Exit(1)
}
