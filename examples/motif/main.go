// Motif reproduces the paper's Figure 3: an OSF/Motif XmLabel showing a
// compound string with two fonts and a right-to-left segment, built
// through the mofe (Motif Wafe) command set:
//
//	mLabel l topLevel \
//	  fontList "*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft" \
//	  labelString "I'm\bft bold\ft and\rl strange"
//	realize
//
// The demo prints the parsed segment structure, an ASCII snapshot, and
// writes figure3.png.
//
//	go run ./examples/motif
package main

import (
	"fmt"
	"os"

	"wafe/internal/core"
	"wafe/internal/xm"
)

func main() {
	w, err := core.New(core.Config{AppName: "mofe", ClassName: "Mofe", Set: core.SetMotif, TestDisplay: true})
	if err != nil {
		fatal(err)
	}
	w.Interp.Stdout = func(line string) { fmt.Println(line) }
	// Brace quoting keeps the compound-string layout commands (\bft,
	// \ft, \rl) away from Tcl's own backslash processing; in double
	// quotes they would need doubling (\\bft).
	script := `
mLabel l topLevel \
  fontList "*b&h-lucida-medium-r*14*=ft,\
*b&h-lucida-bold-r*14*=bft" \
  labelString {I'm\bft bold\ft and\rl strange}
realize
`
	if _, err := w.Eval(script); err != nil {
		fatal(err)
	}
	label := w.App.WidgetByName("l")
	xs := xm.LabelXmString(label)
	fl := xm.LabelFontList(label)
	fmt.Println("fontList tags:", fl.Tags())
	fmt.Println("compound string segments:")
	for i, seg := range xs.Segments {
		font, _ := fl.Lookup(seg.FontTag)
		fmt.Printf("  %d: %-10q font=%-4s (%s) direction=%s\n", i, seg.Text, seg.FontTag, font, seg.Direction)
	}
	fmt.Println("rendered (rtl segments reversed):", xs.PlainText())

	snap, err := w.Eval("snapshot")
	if err != nil {
		fatal(err)
	}
	fmt.Println("--- snapshot ---")
	fmt.Print(snap)

	if _, err := w.Eval("writeImage topLevel figure3.png"); err != nil {
		fatal(err)
	}
	st, _ := os.Stat("figure3.png")
	fmt.Printf("wrote figure3.png (%d bytes)\n", st.Size())

	// The round trip the paper stresses: the resource stays readable.
	src, err := w.Eval("gV l labelString")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("gV l labelString → %s\n", src)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "motif:", err)
	os.Exit(1)
}
