// Designer is an xwafedesign-style interactive design program (Figure 6
// of the paper): the user assembles a widget tree by issuing design
// actions, inspects it, and saves the result as a ready-to-run Wafe
// file-mode script — "this script can also be used later as a
// frontend".
//
// Without a display, the demo replays a scripted design session; with
// -i it reads design commands from stdin:
//
//	add <class> <name> <parent> [res val]...
//	set <name> <res> <val>
//	tree | snapshot | save <file> | done
//
//	go run ./examples/designer
//	go run ./examples/designer -i
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"wafe/internal/core"
	"wafe/internal/plotter"
	"wafe/internal/tcl"
	"wafe/internal/xt"
)

type designer struct {
	w *core.Wafe
	// order records creation order so the saved script reconstructs the
	// tree deterministically.
	order []string
	// attrs holds the resource settings per widget, for save.
	attrs map[string][][2]string
	class map[string]string
}

func main() {
	interactive := flag.Bool("i", false, "read design commands from stdin")
	flag.Parse()
	w, err := core.New(core.Config{AppName: "xwafedesign", Set: core.SetAthena, TestDisplay: true})
	if err != nil {
		fatal(err)
	}
	w.Interp.Stdout = func(line string) { fmt.Println(line) }
	d := &designer{w: w, attrs: map[string][][2]string{}, class: map[string]string{}}

	if *interactive {
		sc := bufio.NewScanner(os.Stdin)
		fmt.Fprint(os.Stderr, "design> ")
		for sc.Scan() {
			if done := d.command(sc.Text()); done {
				return
			}
			fmt.Fprint(os.Stderr, "design> ")
		}
		return
	}

	// Scripted session: design the paper's prime-factor frontend.
	session := []string{
		"add form top topLevel",
		"add asciiText input top editType edit width 200",
		"add label result top label {} width 200 fromVert input",
		"add command quit top fromVert result",
		"add label info top fromVert result fromHoriz quit borderWidth 0 width 150",
		"set quit callback quit",
		"set result label {press return in the input field}",
		"tree",
		"classes",
		"snapshot",
		"save designed.wafe",
		"done",
	}
	for _, line := range session {
		fmt.Println("design> " + line)
		if done := d.command(line); done {
			break
		}
	}
	// Show the generated script.
	data, err := os.ReadFile("designed.wafe")
	if err != nil {
		fatal(err)
	}
	fmt.Println("--- designed.wafe ---")
	fmt.Print(string(data))
	_ = os.Remove("designed.wafe")
}

func (d *designer) command(line string) (done bool) {
	words, err := tcl.ParseList(strings.TrimSpace(line))
	if err != nil || len(words) == 0 {
		return false
	}
	switch words[0] {
	case "add":
		if len(words) < 4 || len(words)%2 != 0 {
			fmt.Println("usage: add class name parent ?res val?...")
			return false
		}
		class, name, parent := words[1], words[2], words[3]
		args := words[4:]
		cmd := []string{class, name, parent}
		cmd = append(cmd, args...)
		if _, err := d.w.Interp.EvalWords(cmd); err != nil {
			fmt.Println("error:", err)
			return false
		}
		d.order = append(d.order, name)
		d.class[name] = class
		for i := 0; i+1 < len(args); i += 2 {
			d.attrs[name] = append(d.attrs[name], [2]string{args[i], args[i+1]})
		}
		d.realizePreview()
	case "set":
		if len(words) != 4 {
			fmt.Println("usage: set name resource value")
			return false
		}
		if _, err := d.w.Interp.EvalWords([]string{"sV", words[1], words[2], words[3]}); err != nil {
			fmt.Println("error:", err)
			return false
		}
		d.attrs[words[1]] = append(d.attrs[words[1]], [2]string{words[2], words[3]})
		d.w.App.Pump()
	case "tree":
		out, err := d.w.Eval("widgetTree")
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Println(out)
	case "snapshot":
		out, err := d.w.Eval("snapshot")
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Print(out)
	case "save":
		if len(words) != 2 {
			fmt.Println("usage: save file")
			return false
		}
		if err := os.WriteFile(words[1], []byte(d.script()), 0o755); err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("saved %d widgets to %s\n", len(d.order), words[1])
	case "classes":
		// Show the widget-class hierarchy with the XmGraph-style Graph
		// widget (the paper's Figure 2 shows exactly this demo).
		var edges []string
		seen := map[string]bool{}
		for _, c := range d.w.WidgetSetClasses() {
			for k := c; k != nil && k.Super != nil; k = k.Super {
				e := k.Super.Name + "-" + k.Name
				if !seen[e] {
					seen[e] = true
					edges = append(edges, e)
				}
			}
		}
		sort.Strings(edges)
		if d.w.App.WidgetByName("classGraph") == nil {
			if _, err := d.w.Interp.EvalWords([]string{
				"graph", "classGraph", "topLevel", "-unmanaged",
				"nodeWidth", "110", "levelSpacing", "6", "siblingSpacing", "4",
			}); err != nil {
				fmt.Println("error:", err)
				return false
			}
		}
		if _, err := d.w.Interp.EvalWords([]string{"sV", "classGraph", "edges", strings.Join(edges, " ")}); err != nil {
			fmt.Println("error:", err)
			return false
		}
		g := d.w.App.WidgetByName("classGraph")
		pos := plotter.NodePositions(g)
		byRow := map[int][]string{}
		var rows []int
		for n, p := range pos {
			if len(byRow[p[1]]) == 0 {
				rows = append(rows, p[1])
			}
			byRow[p[1]] = append(byRow[p[1]], n)
		}
		sort.Ints(rows)
		fmt.Printf("widget class hierarchy (%d classes, %d edges):\n", len(pos), len(edges))
		for depth, y := range rows {
			names := byRow[y]
			sort.Strings(names)
			fmt.Printf("  level %d: %s\n", depth, strings.Join(names, " "))
		}
	case "parents":
		// List composite widgets that can take children.
		var out []string
		for _, n := range d.w.App.WidgetNames() {
			if wid := d.w.App.WidgetByName(n); wid != nil && wid.Class.Composite {
				out = append(out, n)
			}
		}
		sort.Strings(out)
		fmt.Println(strings.Join(out, " "))
	case "done", "quit":
		return true
	default:
		fmt.Println("commands: add set tree snapshot save parents done")
	}
	return false
}

func (d *designer) realizePreview() {
	if !d.w.TopLevel.IsRealized() {
		d.w.TopLevel.Realize()
	}
	d.w.App.Pump()
}

// script emits the designed tree as a runnable Wafe file-mode script.
func (d *designer) script() string {
	var b strings.Builder
	b.WriteString("#!/usr/bin/X11/wafe --f\n")
	b.WriteString("# generated by xwafedesign\n")
	for _, name := range d.order {
		wid := d.w.App.WidgetByName(name)
		if wid == nil {
			continue
		}
		parent := "topLevel"
		if wid.Parent != nil {
			parent = wid.Parent.Name
		}
		b.WriteString(d.class[name] + " " + name + " " + parent)
		for _, kv := range d.attrs[name] {
			b.WriteString(" \\\n  " + kv[0] + " " + tcl.QuoteListElement(kv[1]))
		}
		b.WriteString("\n")
	}
	b.WriteString("realize\n")
	return b.String()
}

var _ = xt.CoreClass // keep the xt import for documentation links

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "designer:", err)
	os.Exit(1)
}
