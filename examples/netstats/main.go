// Netstats is an xnetstats-style monitor ("frontend for netstat -i
// <interval>"): a backend process periodically emits interface packet
// counters; the frontend shows them as a bar graph, a line-graph
// history, and a strip chart. Real production traces are unavailable
// offline, so the backend synthesizes a deterministic traffic pattern —
// the code path (periodic %-commands updating plotter widgets) is
// identical to running the real netstat.
//
//	go run ./examples/netstats           # 6 sampling rounds
//	go run ./examples/netstats -rounds 3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wafe/internal/core"
	"wafe/internal/frontend"
	"wafe/internal/plotter"
	"wafe/internal/xaw"
)

var interfaces = []string{"ln0", "le0", "lo0"}

func main() {
	backendMode := flag.Bool("backend", false, "run as the stats emitter (internal)")
	rounds := flag.Int("rounds", 6, "number of sampling rounds")
	flag.Parse()
	if *backendMode {
		backend(*rounds)
		return
	}
	run(*rounds)
}

// synthTraffic is the deterministic per-round packet count for an
// interface — a stand-in for real counters.
func synthTraffic(iface string, round int) int {
	base := map[string]int{"ln0": 120, "le0": 60, "lo0": 10}[iface]
	return base + (round*37+len(iface)*13)%90
}

func backend(rounds int) {
	out := bufio.NewWriter(os.Stdout)
	emit := func(s string) { out.WriteString(s + "\n"); out.Flush() }
	emit("%form top topLevel")
	emit("%label title top label {network statistics (packets/interval)} borderWidth 0")
	emit("%barGraph bars top fromVert title width 240 height 80 data {0 0 0} labels {" + strings.Join(interfaces, " ") + "} showValues true")
	emit("%lineGraph hist top fromVert bars width 240 height 60 gridLines 2")
	emit("%stripChart chart top fromVert hist width 240 height 40")
	emit("%realize")
	history := make([][]int, len(interfaces))
	for round := 0; round < rounds; round++ {
		var now []string
		total := 0
		for i, iface := range interfaces {
			v := synthTraffic(iface, round)
			history[i] = append(history[i], v)
			now = append(now, fmt.Sprint(v))
			total += v
		}
		emit("%sV bars data {" + strings.Join(now, " ") + "}")
		// Each command must fit in a single line (the paper's 64 KB
		// line protocol), so embedded newlines travel as \n escapes
		// inside a quoted word.
		var lines []string
		for _, h := range history {
			var row []string
			for _, v := range h {
				row = append(row, fmt.Sprint(v))
			}
			lines = append(lines, strings.Join(row, " "))
		}
		emit(`%sV hist data "` + strings.Join(lines, `\n`) + `"`)
		emit(fmt.Sprintf("%%stripChartSample chart %d", total))
		emit(fmt.Sprintf("%%echo round %d done", round))
		// Wait for the frontend's acknowledgement before the next round
		// (the interval ticker of the real netstat -i N).
		sc := bufio.NewScanner(os.Stdin)
		if !sc.Scan() {
			return
		}
	}
	emit("%echo all-rounds-done")
}

func run(rounds int) {
	w, err := core.New(core.Config{AppName: "xnetstats", Set: core.SetAthena, TestDisplay: true})
	if err != nil {
		fatal(err)
	}
	f := frontend.New(w, &frontend.Options{Mode: frontend.ModeFrontend}, os.Stdout)
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	child, err := f.Spawn(exe, []string{"-backend", "-rounds", fmt.Sprint(rounds)})
	if err != nil {
		fatal(err)
	}
	done := make(chan int, 1)
	go func() { done <- w.App.MainLoop() }()
	loopDone := false
	// post runs fn on the event loop; once the loop has ended (the
	// backend exiting quits it), fn runs inline — nothing else touches
	// the app at that point.
	post := func(fn func()) {
		if loopDone {
			fn()
			return
		}
		ch := make(chan struct{})
		w.App.Post(func() { fn(); close(ch) })
		select {
		case <-ch:
		case <-done:
			loopDone = true
			fn()
		}
	}

	// Echo output from the backend goes to the backend's stdin; we need
	// the frontend to ack each round. Replace the interpreter output so
	// "round N done" both acks and reports.
	completed := make(chan string, 16)
	orig := w.Interp.Stdout
	post(func() {
		w.Interp.Stdout = func(line string) {
			orig(line) // ack to the backend
			completed <- line
		}
	})
	for i := 0; i < rounds; i++ {
		select {
		case line := <-completed:
			var bars []float64
			var samples int
			post(func() {
				bars = plotter.Values(w.App.WidgetByName("bars"))
				if c := w.App.WidgetByName("chart"); c != nil {
					samples = len(xaw.StripChartSamples(c))
				}
			})
			fmt.Printf("%-14s bars=%v stripchart-samples=%d\n", line, bars, samples)
		case <-time.After(10 * time.Second):
			fatal(fmt.Errorf("timeout waiting for round %d", i))
		}
	}
	post(func() {
		snap, _ := w.Eval("snapshot")
		fmt.Println("--- final view ---")
		fmt.Print(snap)
		w.App.Quit(0)
	})
	if !loopDone {
		<-done
	}
	child.Kill()
	_ = child.Wait()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netstats:", err)
	os.Exit(1)
}
