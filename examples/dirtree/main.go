// Dirtree is an xdirtree-style directory browser (one of the demo
// applications shipped with the Wafe distribution): a List widget shows
// the entries of the current directory; selecting a subdirectory
// descends into it, selecting ".." goes up. The demo drives itself
// through a scripted walk over a synthetic directory tree and prints a
// snapshot at every step.
//
//	go run ./examples/dirtree           # walk a synthetic tree
//	go run ./examples/dirtree /some/dir # browse a real directory
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"wafe/internal/core"
	"wafe/internal/tcl"
	"wafe/internal/xaw"
)

func main() {
	root := ""
	if len(os.Args) > 1 {
		root = os.Args[1]
	} else {
		var err error
		root, err = makeDemoTree()
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(root)
	}

	w, err := core.New(core.Config{AppName: "xdirtree", Set: core.SetAthena, TestDisplay: true})
	if err != nil {
		fatal(err)
	}
	w.Interp.Stdout = func(line string) { fmt.Println(line) }
	must(w, `
		form top topLevel
		label path top label {} width 300 borderWidth 0
		list dir top fromVert path verticalList true list {}
		command close top fromVert dir label close callback quit
		realize
	`)
	current := root
	show := func() {
		entries, err := listDir(current)
		if err != nil {
			fatal(err)
		}
		mustf(w, "sV path label {%s}", current)
		xaw.ListChange(w.App.WidgetByName("dir"), entries, true)
		w.App.Pump()
	}
	// Selecting an entry descends/ascends. The list callback forwards
	// the selected string (%s) to the application-registered "visit"
	// command — the embedding equivalent of a backend read loop.
	w.Interp.RegisterCommand("visit", func(_ *tcl.Interp, argv []string) (string, error) {
		if len(argv) != 2 {
			return "", fmt.Errorf("usage: visit entry")
		}
		sel := argv[1]
		switch {
		case sel == "..":
			current = filepath.Dir(current)
		case strings.HasSuffix(sel, "/"):
			current = filepath.Join(current, strings.TrimSuffix(sel, "/"))
		default:
			fmt.Printf("file selected: %s\n", filepath.Join(current, sel))
			return "", nil
		}
		show()
		return "", nil
	})
	must(w, `sV dir callback "visit {%s}"`)
	show()

	fmt.Println("--- initial view ---")
	printSnapshot(w)

	// Scripted walk: descend into the first directory, then go back up.
	for _, step := range []string{"src/", "tcl/", "..", "..", "docs/"} {
		if !selectEntry(w, step) {
			continue
		}
		fmt.Printf("--- after selecting %q ---\n", step)
		printSnapshot(w)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dirtree:", err)
	os.Exit(1)
}

func must(w *core.Wafe, script string) {
	if _, err := w.Eval(script); err != nil {
		fatal(err)
	}
}

func mustf(w *core.Wafe, format string, args ...any) {
	must(w, fmt.Sprintf(format, args...))
}

func printSnapshot(w *core.Wafe) {
	snap, err := w.Eval("snapshot")
	if err != nil {
		fatal(err)
	}
	fmt.Print(snap)
}

// selectEntry highlights and notifies the list entry with the given
// label, as a user click would.
func selectEntry(w *core.Wafe, label string) bool {
	lst := w.App.WidgetByName("dir")
	items := lst.StringList("list")
	for i, it := range items {
		if it == label {
			xaw.ListHighlight(lst, i)
			lst.CallCallbacks("callback", map[string]string{"i": fmt.Sprint(i), "s": it})
			w.App.Pump()
			return true
		}
	}
	return false
}

func listDir(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	entries := []string{".."}
	var dirs, files []string
	for _, de := range des {
		if de.IsDir() {
			dirs = append(dirs, de.Name()+"/")
		} else {
			files = append(files, de.Name())
		}
	}
	sort.Strings(dirs)
	sort.Strings(files)
	return append(entries, append(dirs, files...)...), nil
}

func makeDemoTree() (string, error) {
	root, err := os.MkdirTemp("", "xdirtree")
	if err != nil {
		return "", err
	}
	for _, d := range []string{"src/tcl", "src/xt", "docs", "bitmaps"} {
		if err := os.MkdirAll(filepath.Join(root, d), 0o755); err != nil {
			return "", err
		}
	}
	for _, f := range []string{"README", "src/wafe.c", "src/tcl/tclBasic.c", "src/xt/Intrinsic.c", "docs/guide.tex", "bitmaps/logo.xbm"} {
		if err := os.WriteFile(filepath.Join(root, f), []byte("demo\n"), 0o644); err != nil {
			return "", err
		}
	}
	return root, nil
}
