// Quickstart: the paper's Figure 4 file-mode script, run through the
// embedding API. It builds a one-button UI, shows the ASCII snapshot of
// the headless display, clicks the button synthetically and exits via
// the button's callback.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"wafe/internal/core"
	"wafe/internal/frontend"
)

const script = `
command hello topLevel \
  label "Wafe new World" \
  callback "echo Goodbye; quit"
realize
echo --- widget tree ---
echo [widgetTree]
echo --- snapshot ---
echo [snapshot]
sendClick hello
`

func main() {
	w, err := core.New(core.Config{AppName: "quickstart", Set: core.SetAthena, TestDisplay: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w.Interp.Stdout = func(line string) { fmt.Println(line) }
	f := frontend.New(w, &frontend.Options{Mode: frontend.ModeFile}, os.Stdout)
	if err := f.RunScript(script); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	if w.QuitRequested() {
		fmt.Println("quickstart: button callback requested quit — done")
	}
}
