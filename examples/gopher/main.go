// Gopher is xwafegopher, "a simple gopher frontend" from the Wafe demo
// list. A miniature gopher server (RFC 1436 menus over TCP) runs on the
// loopback interface; the frontend shows each menu in a List widget and
// descends when an item is selected. The public gopher space is long
// gone, so the server carries a small built-in hierarchy — the protocol
// handling is the real thing.
//
//	go run ./examples/gopher
package main

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"strings"

	"wafe/internal/core"
	"wafe/internal/tcl"
	"wafe/internal/xaw"
)

// menus maps selector → gopher menu lines (type, display, selector,
// host, port are tab separated, per RFC 1436).
var pages = map[string]string{
	"": "1About Wafe\t/about\t%HOST%\n" +
		"1Demo applications\t/demos\t%HOST%\n" +
		"0README\t/readme\t%HOST%\n",
	"/about": "0What is Wafe?\t/about/what\t%HOST%\n" +
		"0Authors\t/about/authors\t%HOST%\n",
	"/demos": "0xwafeftp\t/demos/ftp\t%HOST%\n" +
		"0xwafemail\t/demos/mail\t%HOST%\n" +
		"0xwafegopher\t/demos/gopher\t%HOST%\n",
	"/readme":        "Wafe provides a frontend for applications in various languages.\n",
	"/about/what":    "Wafe = Tcl + (Intrinsics + Widgets + Converters + Ext).\n",
	"/about/authors": "Gustaf Neumann and Stefan Nusser, WU Wien.\n",
	"/demos/ftp":     "An FTP frontend.\n",
	"/demos/mail":    "A mail user frontend with faces.\n",
	"/demos/gopher":  "You are looking at it.\n",
}

// isMenu reports whether a selector denotes a menu (type 1) page.
func isMenu(sel string) bool {
	switch sel {
	case "", "/about", "/demos":
		return true
	}
	return false
}

// serveGopher answers selectors per RFC 1436: selector line in, body
// out, terminated by "." for menus.
func serveGopher(ln net.Listener, hostport string) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			r := bufio.NewReader(c)
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			sel := strings.TrimRight(line, "\r\n")
			body, ok := pages[sel]
			if !ok {
				fmt.Fprintf(c, "3'%s' does not exist\terror\t%s\r\n.\r\n", sel, hostport)
				return
			}
			body = strings.ReplaceAll(body, "%HOST%", hostport)
			for _, l := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
				fmt.Fprintf(c, "%s\r\n", l)
			}
			if isMenu(sel) {
				fmt.Fprint(c, ".\r\n")
			}
		}(conn)
	}
}

// fetch retrieves one selector.
func fetch(hostport, sel string) ([]string, error) {
	conn, err := net.Dial("tcp", hostport)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	fmt.Fprintf(conn, "%s\r\n", sel)
	var lines []string
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		l := strings.TrimRight(sc.Text(), "\r")
		if l == "." {
			break
		}
		lines = append(lines, l)
	}
	return lines, sc.Err()
}

type item struct {
	typ      byte
	display  string
	selector string
}

func parseMenu(lines []string) []item {
	var out []item
	for _, l := range lines {
		if l == "" {
			continue
		}
		fields := strings.Split(l, "\t")
		if len(fields) < 2 {
			continue
		}
		out = append(out, item{typ: l[0], display: fields[0][1:], selector: fields[1]})
	}
	return out
}

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	defer ln.Close()
	hostport := ln.Addr().String()
	go serveGopher(ln, hostport)

	w, err := core.New(core.Config{AppName: "xwafegopher", Set: core.SetAthena, TestDisplay: true})
	if err != nil {
		fatal(err)
	}
	w.Interp.Stdout = func(line string) { fmt.Println(line) }
	must(w, `
		form g topLevel
		label where g label {gopher://} width 340 borderWidth 0
		list menu g fromVert where verticalList true list {}
		asciiText body g fromVert menu width 340 string {}
		command up g fromVert body label {up} callback {visit {}}
		command bye g fromVert body fromHoriz up label quit callback quit
		realize
	`)
	var current []item
	visit := func(sel string) {
		lines, err := fetch(hostport, sel)
		if err != nil {
			fatal(err)
		}
		mustf(w, "sV where label {gopher://%s%s}", hostport, sel)
		if isMenu(sel) {
			current = parseMenu(lines)
			var disp []string
			for _, it := range current {
				marker := "  "
				if it.typ == '1' {
					marker = "/ "
				}
				disp = append(disp, marker+it.display)
			}
			xaw.ListChange(w.App.WidgetByName("menu"), disp, true)
			mustf(w, "sV body string {}")
		} else {
			mustf(w, "sV body string %s", tcl.QuoteListElement(strings.Join(lines, "\n")))
		}
		w.App.Pump()
	}
	w.Interp.RegisterCommand("visit", func(_ *tcl.Interp, argv []string) (string, error) {
		sel := ""
		if len(argv) > 1 {
			sel = argv[1]
		}
		visit(sel)
		return "", nil
	})
	w.Interp.RegisterCommand("openItem", func(_ *tcl.Interp, argv []string) (string, error) {
		if len(argv) != 2 {
			return "", fmt.Errorf("usage: openItem index")
		}
		var idx int
		fmt.Sscanf(argv[1], "%d", &idx)
		if idx < 0 || idx >= len(current) {
			return "", fmt.Errorf("no item %d", idx)
		}
		visit(current[idx].selector)
		return "", nil
	})
	must(w, `sV menu callback "openItem %i"`)

	// Scripted session: root menu → About → What is Wafe? → back up.
	visit("")
	fmt.Println("--- root menu ---")
	printSnap(w)
	sel(w, 0) // About Wafe
	fmt.Println("--- /about ---")
	printSnap(w)
	sel(w, 0) // What is Wafe?
	fmt.Println("--- document ---")
	printSnap(w)
	fmt.Println("body:", w.App.WidgetByName("body").Str("string"))
}

func sel(w *core.Wafe, idx int) {
	lst := w.App.WidgetByName("menu")
	xaw.ListHighlight(lst, idx)
	lst.CallCallbacks("callback", map[string]string{"i": fmt.Sprint(idx)})
	w.App.Pump()
}

func printSnap(w *core.Wafe) {
	snap, err := w.Eval("snapshot")
	if err != nil {
		fatal(err)
	}
	fmt.Print(snap)
}

func must(w *core.Wafe, script string) {
	if _, err := w.Eval(script); err != nil {
		fatal(err)
	}
}

func mustf(w *core.Wafe, format string, args ...any) {
	must(w, fmt.Sprintf(format, args...))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gopher:", err)
	os.Exit(1)
}
